package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"drqos/internal/channel"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/topology"
)

// EstablishRequest is the JSON body of POST /v1/connections. A fully zero
// QoS block selects qos.DefaultSpec (the paper's 100..500 Kb/s, Δ=50).
type EstablishRequest struct {
	Src           int     `json:"src"`
	Dst           int     `json:"dst"`
	MinKbps       int64   `json:"min_kbps"`
	MaxKbps       int64   `json:"max_kbps"`
	IncrementKbps int64   `json:"increment_kbps"`
	Utility       float64 `json:"utility"`
}

// Spec materializes the request's elastic QoS.
func (r EstablishRequest) Spec() qos.ElasticSpec {
	if r.MinKbps == 0 && r.MaxKbps == 0 && r.IncrementKbps == 0 {
		s := qos.DefaultSpec()
		if r.Utility > 0 {
			s.Utility = r.Utility
		}
		return s
	}
	return qos.ElasticSpec{
		Min:       qos.Kbps(r.MinKbps),
		Max:       qos.Kbps(r.MaxKbps),
		Increment: qos.Kbps(r.IncrementKbps),
		Utility:   r.Utility,
	}
}

// EstablishResponse summarizes an admitted connection.
type EstablishResponse struct {
	ID                int64 `json:"id"`
	Level             int   `json:"level"`
	BandwidthKbps     int64 `json:"bandwidth_kbps"`
	HasBackup         bool  `json:"has_backup"`
	PrimaryHops       int   `json:"primary_hops"`
	DirectlyChained   int   `json:"directly_chained"`
	IndirectlyChained int   `json:"indirectly_chained"`
	LevelChanges      int   `json:"level_changes"`
}

// TerminateResponse summarizes a released connection.
type TerminateResponse struct {
	ID           int64 `json:"id"`
	Affected     int   `json:"affected"`
	LevelChanges int   `json:"level_changes"`
}

// FaultRequest is the JSON body of POST /v1/faults/link. Action is "fail"
// (default) or "repair".
type FaultRequest struct {
	Link   int    `json:"link"`
	Action string `json:"action"`
}

// FaultResponse summarizes a fault-injection event.
type FaultResponse struct {
	Link        int     `json:"link"`
	Action      string  `json:"action"`
	Activated   []int64 `json:"activated,omitempty"`
	Dropped     []int64 `json:"dropped,omitempty"`
	Recovered   []int64 `json:"recovered,omitempty"`
	BackupsLost []int64 `json:"backups_lost,omitempty"`
	Squeezed    int     `json:"squeezed"`
	Reprotected int     `json:"reprotected"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error    string `json:"error"`
	Rejected bool   `json:"rejected,omitempty"`
}

// NewHandler returns the HTTP/JSON API over s:
//
//	POST   /v1/connections        admit a DR-connection
//	DELETE /v1/connections/{id}   terminate a DR-connection
//	POST   /v1/faults/link        fail or repair a link
//	POST   /v1/admin/recover      rebuild from the journal, exit degraded mode
//	GET    /v1/stats              consistent service snapshot
//	GET    /v1/invariants         run the manager's consistency audit
//	GET    /metrics               Prometheus text metrics
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/connections", func(w http.ResponseWriter, r *http.Request) {
		var req EstablishRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return
		}
		rep, err := s.Establish(r.Context(), topology.NodeID(req.Src), topology.NodeID(req.Dst), req.Spec())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, EstablishResponse{
			ID:                int64(rep.Conn.ID),
			Level:             rep.Conn.Level,
			BandwidthKbps:     int64(rep.Conn.Bandwidth()),
			HasBackup:         rep.Conn.HasBackup,
			PrimaryHops:       rep.Conn.Primary.Hops(),
			DirectlyChained:   len(rep.DirectlyChained),
			IndirectlyChained: len(rep.IndirectlyChained),
			LevelChanges:      len(rep.Changes),
		})
	})
	mux.HandleFunc("DELETE /v1/connections/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad connection id: " + err.Error()})
			return
		}
		rep, err := s.Terminate(r.Context(), channel.ConnID(id))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, TerminateResponse{
			ID:           id,
			Affected:     len(rep.Affected),
			LevelChanges: len(rep.Changes),
		})
	})
	mux.HandleFunc("POST /v1/faults/link", func(w http.ResponseWriter, r *http.Request) {
		var req FaultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return
		}
		switch req.Action {
		case "", "fail":
			rep, err := s.FailLink(r.Context(), topology.LinkID(req.Link))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, FaultResponse{
				Link:        req.Link,
				Action:      "fail",
				Activated:   connIDs(rep.Activated),
				Dropped:     connIDs(rep.Dropped),
				Recovered:   connIDs(rep.Recovered),
				BackupsLost: connIDs(rep.BackupsLost),
				Squeezed:    len(rep.Squeezed),
			})
		case "repair":
			restored, err := s.RepairLink(r.Context(), topology.LinkID(req.Link))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, FaultResponse{
				Link: req.Link, Action: "repair", Reprotected: restored,
			})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown action %q", req.Action)})
		}
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Snapshot(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/invariants", func(w http.ResponseWriter, r *http.Request) {
		err := s.CheckInvariants(r.Context())
		degraded, reason := s.Degraded()
		if err != nil {
			if errors.Is(err, ErrServerClosed) {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"ok": false, "error": err.Error(),
				"degraded": degraded, "degraded_reason": reason,
			})
			return
		}
		// Degraded is sticky: a clean audit now does not un-corrupt the
		// event that tripped it, so the flag is reported either way.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "degraded": degraded, "degraded_reason": reason})
	})
	mux.HandleFunc("POST /v1/admin/recover", func(w http.ResponseWriter, r *http.Request) {
		seq, err := s.Recover(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"recovered": true, "journal_seq": seq})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Snapshot(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, st)
	})
	return mux
}

func connIDs(ids []channel.ConnID) []int64 {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps typed service errors onto HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, manager.ErrRejected):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Rejected: true})
	case errors.Is(err, qos.ErrInvalidSpec):
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrConflict):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDegraded):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNotDegraded), errors.Is(err, ErrRecoveryInProgress), errors.Is(err, ErrNoJournal):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrServerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}
