package server_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drqos/internal/channel"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

func newTestServer(t *testing.T, queue int) *server.Server {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(g, manager.Config{Capacity: 10000}, server.Options{QueueDepth: queue})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConcurrentChurn hammers the actor from many goroutines — arrivals,
// terminations and fault injection interleaved — and then audits the full
// ledger with CheckInvariants.
func TestConcurrentChurn(t *testing.T) {
	s := newTestServer(t, 64)
	ctx := context.Background()
	nodes := s.Graph().NumNodes()
	links := s.Graph().NumLinks()
	spec := qos.DefaultSpec()

	const workers = 10
	const opsPerWorker = 150
	var established, terminated, rejected atomic.Int64
	aliveOwned := make([][]channel.ConnID, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(1000 + w))
			for i := 0; i < opsPerWorker; i++ {
				if len(aliveOwned[w]) > 0 && src.Float64() < 0.3 {
					last := len(aliveOwned[w]) - 1
					id := aliveOwned[w][last]
					aliveOwned[w] = aliveOwned[w][:last]
					_, err := s.Terminate(ctx, id)
					// The connection may have been dropped by a
					// concurrent link failure.
					if err != nil && !errors.Is(err, server.ErrNotFound) {
						t.Errorf("terminate %d: %v", id, err)
						return
					}
					if err == nil {
						terminated.Add(1)
					}
					continue
				}
				a, b := src.Intn(nodes), src.Intn(nodes)
				if a == b {
					b = (b + 1) % nodes
				}
				rep, err := s.Establish(ctx, topology.NodeID(a), topology.NodeID(b), spec)
				switch {
				case err == nil:
					established.Add(1)
					aliveOwned[w] = append(aliveOwned[w], rep.Conn.ID)
				case errors.Is(err, manager.ErrRejected):
					rejected.Add(1)
				default:
					t.Errorf("establish: %v", err)
					return
				}
			}
		}(w)
	}
	// One fault injector: fail a link, then repair it, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.New(7)
		for i := 0; i < 40; i++ {
			l := topology.LinkID(src.Intn(links))
			if _, err := s.FailLink(ctx, l); err != nil {
				t.Errorf("fail link %d: %v", l, err)
				return
			}
			if _, err := s.RepairLink(ctx, l); err != nil {
				t.Errorf("repair link %d: %v", l, err)
				return
			}
		}
	}()
	wg.Wait()

	if err := s.CheckInvariants(ctx); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	st, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := established.Load() + rejected.Load(); st.Requests != got {
		t.Errorf("snapshot requests %d, workers issued %d", st.Requests, got)
	}
	if st.Rejects != rejected.Load() {
		t.Errorf("snapshot rejects %d, workers saw %d", st.Rejects, rejected.Load())
	}
	histSum := 0
	for _, n := range st.LevelHistogram {
		histSum += n
	}
	if histSum != st.Alive {
		t.Errorf("level histogram sums to %d, alive %d", histSum, st.Alive)
	}
	if len(st.FailedLinks) != 0 {
		t.Errorf("failed links not all repaired: %v", st.FailedLinks)
	}

	// Drain every owned connection; dropped ones answer ErrNotFound.
	for w := range aliveOwned {
		for _, id := range aliveOwned[w] {
			if _, err := s.Terminate(ctx, id); err != nil && !errors.Is(err, server.ErrNotFound) {
				t.Fatalf("drain terminate %d: %v", id, err)
			}
		}
	}
	st, err = s.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Alive != 0 {
		t.Errorf("alive after draining all owned connections: %d", st.Alive)
	}
	if err := s.CheckInvariants(ctx); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownWhileBusy proves the drain guarantee: every call that did not
// return ErrServerClosed was applied exactly once, and the processed-command
// counter matches after Shutdown.
func TestShutdownWhileBusy(t *testing.T) {
	s := newTestServer(t, 8)
	nodes := s.Graph().NumNodes()
	spec := qos.DefaultSpec()

	var applied atomic.Int64 // calls that got a real answer (applied once)
	var closedSeen atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(500 + w))
			for {
				a, b := src.Intn(nodes), src.Intn(nodes)
				if a == b {
					b = (b + 1) % nodes
				}
				_, err := s.Establish(context.Background(), topology.NodeID(a), topology.NodeID(b), spec)
				if errors.Is(err, server.ErrServerClosed) {
					closedSeen.Add(1)
					return
				}
				applied.Add(1)
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let the workers get going
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	if closedSeen.Load() != 12 {
		t.Errorf("workers that saw ErrServerClosed: %d, want 12", closedSeen.Load())
	}
	if applied.Load() == 0 {
		t.Fatal("no commands applied before shutdown; test proves nothing")
	}
	if got := s.Processed(); got != applied.Load() {
		t.Errorf("loop processed %d commands, callers got %d answers (dropped or double-applied)", got, applied.Load())
	}
	// Post-shutdown calls fail fast.
	if _, err := s.Establish(context.Background(), 0, 1, spec); !errors.Is(err, server.ErrServerClosed) {
		t.Errorf("establish after shutdown: %v, want ErrServerClosed", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestSubmitQueueFullTimeout wedges the loop, fills the queue, and checks a
// bounded-context submit gives up with the context's error. Accepted fill
// commands whose deadline expired while queued are shed, not executed.
func TestSubmitQueueFullTimeout(t *testing.T) {
	s := newTestServer(t, 1)
	release := make(chan struct{})
	ran := make(chan struct{}, 8)

	// Wedge the loop.
	if err := s.Submit(context.Background(), func(*manager.Manager) {
		<-release
		ran <- struct{}{}
	}); err != nil {
		t.Fatal(err)
	}
	// Keep submitting until the buffer is full and a bounded submit times
	// out. With depth 1 and a wedged loop this takes at most a few tries.
	accepted := 0
	filled := false
	for i := 0; i < 5 && !filled; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		err := s.Submit(ctx, func(*manager.Manager) { ran <- struct{}{} })
		cancel()
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, context.DeadlineExceeded):
			filled = true
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if !filled {
		t.Fatal("queue never filled; deadline path not exercised")
	}
	if accepted == 0 {
		t.Fatal("no command accepted besides the wedge")
	}

	close(release)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Only the wedge ran: every accepted fill command's 30ms deadline died
	// behind the wedge, so the loop shed them instead of executing stale
	// work the caller already abandoned.
	close(ran)
	got := 0
	for range ran {
		got++
	}
	if got != 1 {
		t.Errorf("%d commands executed, want 1 (the wedge; expired fills must be shed)", got)
	}
	expired, canceled := s.Sheds()
	if int(expired+canceled) != accepted {
		t.Errorf("sheds = %d expired + %d canceled, want %d total", expired, canceled, accepted)
	}
}
