package server_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"drqos/internal/manager"
	"drqos/internal/overload"
	"drqos/internal/qos"
	"drqos/internal/server"
)

// TestExpiredCommandShed wedges the loop, queues establishes whose callers
// then give up, and checks none of them executes: the loop must shed stale
// mutations instead of applying work nobody is waiting for.
func TestExpiredCommandShed(t *testing.T) {
	s := newTestServer(t, 64)
	release := make(chan struct{})
	if err := s.Submit(context.Background(), func(*manager.Manager) { <-release }); err != nil {
		t.Fatal(err)
	}

	const n = 10
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Establish(ctx, 0, 5, qos.DefaultSpec())
			if !errors.Is(err, context.Canceled) {
				t.Errorf("establish behind wedge: %v, want context.Canceled", err)
			}
		}()
	}
	// Wait until all n commands are actually queued, then abandon them.
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d commands queued", s.QueueDepth(), n)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	close(release)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	expired, canceled := s.Sheds()
	if expired+canceled != n {
		t.Errorf("sheds = %d expired + %d canceled, want %d total", expired, canceled, n)
	}
	if got := s.Establishes(); got != 0 {
		t.Errorf("%d abandoned establishes executed, want 0", got)
	}
}

// TestPriorityLaneOrdering wedges the loop, interleaves consuming-lane and
// freeing-lane submissions, and checks the drain order: every queued
// freeing command (terminations, repairs) runs before any queued
// consuming command (establishes), regardless of arrival order.
func TestPriorityLaneOrdering(t *testing.T) {
	s := newTestServer(t, 64)
	release := make(chan struct{})
	if err := s.Submit(context.Background(), func(*manager.Manager) { <-release }); err != nil {
		t.Fatal(err)
	}

	// Arrival order deliberately consuming-first. The slice is only
	// appended to from inside the loop goroutine, so no lock is needed.
	var order []string
	ctx := context.Background()
	for _, c := range []string{"c1", "c2", "c3"} {
		c := c
		if err := s.SubmitConsuming(ctx, func(*manager.Manager) { order = append(order, c) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []string{"f1", "f2"} {
		f := f
		if err := s.Submit(ctx, func(*manager.Manager) { order = append(order, f) }); err != nil {
			t.Fatal(err)
		}
	}

	close(release)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	want := "f1,f2,c1,c2,c3"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("drain order %q, want %q (freeing lane must jump the queue)", got, want)
	}
}

// TestOverloadDetectorEndToEnd drives a server with an artificial per-
// command execution delay into sustained consuming-lane queue delay and
// checks the overloaded state latches, then self-clears once the backlog
// drains and the queue goes quiet.
func TestOverloadDetectorEndToEnd(t *testing.T) {
	var flips []bool
	var mu sync.Mutex
	s := newOverloadTestServer(t, server.Options{
		QueueDepth: 256,
		ExecDelay:  2 * time.Millisecond,
		Overload:   overload.DetectorConfig{Target: time.Millisecond, Interval: 5 * time.Millisecond},
		OnOverload: func(v bool) { mu.Lock(); flips = append(flips, v); mu.Unlock() },
	})
	defer s.Shutdown(context.Background())
	ctx := context.Background()

	// 100 establishes at 2ms service time each: by a few commands in, the
	// consuming lane's queueing delay far exceeds the 1ms target for well
	// over the 5ms interval.
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Establish(ctx, 0, 5, qos.DefaultSpec())
			if err != nil && !errors.Is(err, manager.ErrRejected) {
				t.Errorf("establish: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := s.OverloadEpisodes(); got == 0 {
		t.Fatal("sustained 2ms/command backlog never latched the overload state")
	}
	mu.Lock()
	if len(flips) == 0 || !flips[0] {
		t.Errorf("OnOverload flips = %v, want first flip true", flips)
	}
	mu.Unlock()
	// Backlog fully drained and quiet: the latch must clear by itself
	// (either a below-target sample or the idle self-clear path).
	deadline := time.Now().Add(5 * time.Second)
	for s.Overloaded() {
		if time.Now().After(deadline) {
			t.Fatal("overloaded state never cleared after the queue drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newOverloadTestServer(t *testing.T, opt server.Options) *server.Server {
	t.Helper()
	g := journaledGraph(t)
	s, err := server.New(g, manager.Config{Capacity: 10000}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHTTPOverloadShedding forces the overloaded state and checks the HTTP
// contract: new capacity-consuming work answers 503 with a Retry-After
// hint, while terminations and reads stay live.
func TestHTTPOverloadShedding(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	var est server.EstablishResponse
	if code, raw := doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, &est); code != http.StatusCreated {
		t.Fatalf("establish while healthy: %d %s", code, raw)
	}

	s.ForceOverloaded(true)

	// Establish is shed with a machine-readable back-off hint.
	resp := post(t, c, ts.URL+"/v1/connections", `{"src":1,"dst":6}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("establish while overloaded: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("503 Retry-After header = %q, want >= 1", ra)
	}
	// Fail injection consumes capacity too: shed.
	resp = post(t, c, ts.URL+"/v1/faults/link", `{"link":0,"action":"fail"}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("fail-link while overloaded: %d, want 503", resp.StatusCode)
	}
	// Reads stay live and report the state.
	var st server.Stats
	if code, raw := doJSON(t, c, "GET", ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats while overloaded: %d %s", code, raw)
	}
	if !st.Overloaded {
		t.Error("stats.Overloaded = false while forced overloaded")
	}
	if code, raw := doJSON(t, c, "GET", ts.URL+"/metrics", nil, nil); code != http.StatusOK || !strings.Contains(raw, "drqos_overloaded 1") {
		t.Errorf("metrics while overloaded: %d, want drqos_overloaded 1 in body", code)
	}
	// Termination frees capacity: it must be admitted.
	var term server.TerminateResponse
	if code, raw := doJSON(t, c, "DELETE", ts.URL+"/v1/connections/"+strconv.FormatInt(est.ID, 10), nil, &term); code != http.StatusOK {
		t.Errorf("terminate while overloaded: %d %s, want 200", code, raw)
	}

	s.ForceOverloaded(false)
	if code, raw := doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 1, Dst: 6}, nil); code != http.StatusCreated {
		t.Errorf("establish after clear: %d %s, want 201", code, raw)
	}
}

// TestHTTPRateLimit checks the per-client token bucket: a client that
// exceeds its budget gets 429 + Retry-After, other clients are unaffected,
// and the bucket refills with time.
func TestHTTPRateLimit(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s, server.WithRateLimit(5, 2)))
	defer ts.Close()
	c := ts.Client()

	send := func(clientID string) *http.Response {
		t.Helper()
		return post(t, c, ts.URL+"/v1/connections", `{"src":0,"dst":5}`, map[string]string{"X-Client-ID": clientID})
	}

	// Burst of 2 admitted, third refused.
	for i := 0; i < 2; i++ {
		if resp := send("alice"); resp.StatusCode != http.StatusCreated {
			t.Fatalf("burst request %d: %d, want 201", i, resp.StatusCode)
		}
	}
	resp := send("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	// Another client has its own bucket.
	if resp := send("bob"); resp.StatusCode != http.StatusCreated {
		t.Errorf("other client: %d, want 201", resp.StatusCode)
	}
	// Refill: at 5 tokens/s, 300ms buys one more request.
	time.Sleep(300 * time.Millisecond)
	if resp := send("alice"); resp.StatusCode != http.StatusCreated {
		t.Errorf("post-refill request: %d, want 201", resp.StatusCode)
	}
	// The refusal is visible in metrics.
	if code, raw := doJSON(t, c, "GET", ts.URL+"/metrics", nil, nil); code != http.StatusOK || !strings.Contains(raw, "drqos_rate_limited_total") {
		t.Errorf("metrics: %d, want drqos_rate_limited_total in body", code)
	}
}

// TestHTTPMaxBody checks oversized mutation bodies answer 413.
func TestHTTPMaxBody(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s, server.WithMaxBodyBytes(128)))
	defer ts.Close()
	c := ts.Client()

	resp := post(t, c, ts.URL+"/v1/connections", `{"src":0,"dst":5,"pad":"`+strings.Repeat("x", 512)+`"}`, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", resp.StatusCode)
	}
	// A body under the cap still works.
	if code, raw := doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, nil); code != http.StatusCreated {
		t.Errorf("small body: %d %s, want 201", code, raw)
	}
}

// TestReadyzOverloaded checks the readiness probe flips with the
// overloaded state while liveness stays green.
func TestReadyzOverloaded(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	if code, raw := doJSON(t, c, "GET", ts.URL+"/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz while healthy: %d %s", code, raw)
	}
	s.ForceOverloaded(true)
	resp := get(t, c, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while overloaded: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("not-ready readyz without Retry-After header")
	}
	if code, _ := doJSON(t, c, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz while overloaded: %d, want 200 (liveness must not flap)", code)
	}
	s.ForceOverloaded(false)
	if code, raw := doJSON(t, c, "GET", ts.URL+"/readyz", nil, nil); code != http.StatusOK {
		t.Errorf("readyz after clear: %d %s, want 200", code, raw)
	}
}

// TestReadyzRecoveryFlow walks the probe through degraded → recovering →
// ready on a journaled server: corruption flips it not-ready, a recovery
// blocked at the swap reports recovering, and the completed swap restores
// readiness.
func TestReadyzRecoveryFlow(t *testing.T) {
	g := journaledGraph(t)
	s, _ := newJournaledServer(t, g, server.Options{QueueDepth: 64})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()
	ctx := context.Background()

	establishN(t, s, 5)
	corrupt(t, s)
	if err := s.CheckInvariants(ctx); err == nil {
		t.Fatal("audit of corrupted state passed")
	}

	var body struct {
		Ready      bool `json:"ready"`
		Degraded   bool `json:"degraded"`
		Recovering bool `json:"recovering"`
	}
	if code, _ := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); code != http.StatusServiceUnavailable || !body.Degraded {
		t.Fatalf("readyz while degraded: %d %+v, want 503 degraded", code, body)
	}

	// Wedge the loop so Recover blocks at its swap command, making the
	// transient recovering state observable.
	release := make(chan struct{})
	if err := s.Submit(ctx, func(*manager.Manager) { <-release }); err != nil {
		t.Fatal(err)
	}
	recoverErr := make(chan error, 1)
	go func() {
		_, err := s.Recover(ctx)
		recoverErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); code == http.StatusServiceUnavailable && body.Recovering {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported recovering: %+v", body)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if err := <-recoverErr; err != nil {
		t.Fatalf("recover: %v", err)
	}
	if code, _ := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); code != http.StatusOK || !body.Ready {
		t.Errorf("readyz after recovery: %d %+v, want 200 ready", code, body)
	}
}

// post issues a raw POST with optional headers and returns the drained
// response, so tests can inspect status and headers together.
func post(t *testing.T, c *http.Client, url, body string, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func get(t *testing.T, c *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}
