package server_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

func journaledGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newJournaledServer(t *testing.T, g *topology.Graph, opt server.Options) (*server.Server, *journal.Journal) {
	t.Helper()
	jnl, rec, err := journal.Open(t.TempDir(), journal.Options{FsyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })
	if rec.LastSeq != 0 {
		t.Fatalf("fresh dir recovered seq %d", rec.LastSeq)
	}
	opt.Journal = jnl
	s, err := server.New(g, manager.Config{Capacity: 10000}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s, jnl
}

func establishN(t *testing.T, s *server.Server, n int) {
	t.Helper()
	ctx := context.Background()
	nodes := s.Graph().NumNodes()
	r := rng.New(99)
	made := 0
	for made < n {
		src := topology.NodeID(r.Intn(nodes))
		dst := topology.NodeID(r.Intn(nodes))
		if src == dst {
			continue
		}
		if _, err := s.Establish(ctx, src, dst, qos.DefaultSpec()); err == nil {
			made++
		} else if !errors.Is(err, manager.ErrRejected) {
			t.Fatal(err)
		}
	}
}

// TestRestartReplaysJournal is the crash/restart contract at the server
// level: a second server built via Rebuild from the same data dir reports
// the same population as the one that wrote it.
func TestRestartReplaysJournal(t *testing.T) {
	g := journaledGraph(t)
	s, jnl := newJournaledServer(t, g, server.Options{SnapshotEvery: 7})
	ctx := context.Background()
	establishN(t, s, 20)
	if _, err := s.FailLink(ctx, 0); err != nil && !errors.Is(err, server.ErrConflict) {
		t.Fatal(err)
	}
	before, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Journaled || before.JournalSeq == 0 {
		t.Fatalf("journal fields missing from stats: %+v", before)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// No jnl.Close(): simulate the crash by reopening the directory.

	jnl2, rec, err := journal.Open(jnl.Dir(), journal.Options{FsyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if rec.SnapshotSeq == 0 {
		t.Fatal("SnapshotEvery=7 over 21 events produced no snapshot")
	}
	m, err := server.Rebuild(g, manager.Config{Capacity: 10000}, rec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := server.NewFromManager(g, m, server.Options{Journal: jnl2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(ctx)
	after, err := s2.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Alive != before.Alive || after.Requests != before.Requests || after.Rejects != before.Rejects {
		t.Fatalf("replayed population %d/%d/%d, want %d/%d/%d",
			after.Alive, after.Requests, after.Rejects, before.Alive, before.Requests, before.Rejects)
	}
	if len(after.LevelHistogram) != len(before.LevelHistogram) {
		t.Fatalf("histogram %v vs %v", after.LevelHistogram, before.LevelHistogram)
	}
	for i := range after.LevelHistogram {
		if after.LevelHistogram[i] != before.LevelHistogram[i] {
			t.Fatalf("histogram %v vs %v", after.LevelHistogram, before.LevelHistogram)
		}
	}
	if len(after.FailedLinks) != len(before.FailedLinks) {
		t.Fatalf("failed links %v vs %v", after.FailedLinks, before.FailedLinks)
	}
	// The restarted server keeps journaling where the old one stopped.
	establishN(t, s2, 1)
	if got := jnl2.LastSeq(); got != before.JournalSeq+1 {
		t.Fatalf("journal seq after restart %d, want %d", got, before.JournalSeq+1)
	}
}

// TestRecoverHTTP drives the full supervised-recovery path over HTTP: a
// journaled server degrades on an injected out-of-band corruption, refuses
// mutations with 503, then POST /v1/admin/recover rebuilds from the journal
// and the server serves mutations again, with the metrics to prove it.
func TestRecoverHTTP(t *testing.T) {
	g := journaledGraph(t)
	var recovered atomic.Int64
	s, _ := newJournaledServer(t, g, server.Options{
		SnapshotEvery: 5,
		OnRecover:     func(seq uint64) { recovered.Add(1) },
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	// Recover on a healthy server is a 409.
	code, raw := doJSON(t, c, "POST", ts.URL+"/v1/admin/recover", nil, nil)
	if code != http.StatusConflict {
		t.Fatalf("recover while healthy: %d %s, want 409", code, raw)
	}

	establishN(t, s, 12)
	corrupt(t, s)
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/invariants", nil, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("invariants after corruption: %d %s", code, raw)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("establish while degraded: %d %s, want 503", code, raw)
	}

	// The corruption was injected out-of-band (not journaled), so replaying
	// the journal rebuilds the clean state and recovery succeeds.
	var rr struct {
		Recovered  bool   `json:"recovered"`
		JournalSeq uint64 `json:"journal_seq"`
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/admin/recover", nil, &rr)
	if code != http.StatusOK || !rr.Recovered || rr.JournalSeq == 0 {
		t.Fatalf("recover: %d %s", code, raw)
	}
	if recovered.Load() != 1 {
		t.Fatalf("OnRecover fired %d times, want 1", recovered.Load())
	}

	// Back in service: audit clean, mutations succeed, stats un-latched.
	if err := s.CheckInvariants(context.Background()); err != nil {
		t.Fatalf("audit after recovery: %v", err)
	}
	var st server.Stats
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/stats", nil, &st)
	if code != http.StatusOK || st.Degraded || st.Recoveries != 1 || st.Alive != 12 {
		t.Fatalf("stats after recovery: %d %s", code, raw)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, nil)
	if code != http.StatusCreated && code != http.StatusConflict { // admission may legitimately reject
		t.Fatalf("establish after recovery: %d %s", code, raw)
	}

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"drqos_recoveries_total 1", "drqos_recovery_failures_total 0",
		"drqos_degraded 0", "drqos_recovering 0", "drqos_journaled 1", "drqos_journal_seq"} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q in:\n%s", want, mb)
		}
	}
}

// TestAutoRecover checks the supervisor: with RecoverPolicy.Auto the server
// exits degraded mode by itself.
func TestAutoRecover(t *testing.T) {
	g := journaledGraph(t)
	s, _ := newJournaledServer(t, g, server.Options{
		Recover: server.RecoverPolicy{Auto: true, InitialBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
	})
	defer s.Shutdown(context.Background())
	establishN(t, s, 5)
	corrupt(t, s)
	if err := s.CheckInvariants(context.Background()); !manager.IsInvariantViolation(err) {
		t.Fatalf("audit after corruption: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if deg, _ := s.Degraded(); !deg {
			break
		}
		if time.Now().After(deadline) {
			_, _, fails, lastErr := s.RecoveryStatus()
			t.Fatalf("auto recovery never un-latched degraded (failures %d, last %q)", fails, lastErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, recoveries, _, _ := s.RecoveryStatus(); recoveries < 1 {
		t.Fatal("no recovery counted")
	}
	establishN(t, s, 1)
}

// TestRecoverWithoutJournal: an in-memory server has nothing to rebuild
// from; recovery is refused and degraded stays latched.
func TestRecoverWithoutJournal(t *testing.T) {
	s := newDegradedTestServer(t, nil)
	defer s.Shutdown(context.Background())
	corrupt(t, s)
	_ = s.CheckInvariants(context.Background())
	if _, err := s.Recover(context.Background()); !errors.Is(err, server.ErrNoJournal) {
		t.Fatalf("recover without journal: %v, want ErrNoJournal", err)
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("degraded un-latched by a refused recovery")
	}
}
