package server_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// TestSubmitPreCancelledContext is the regression test for the admission
// race: when the queue has space AND the context is already dead, both
// cases of submit's select are ready and Go picks uniformly at random —
// so without an explicit up-front ctx.Err() check, a cancelled caller
// would enqueue its command about half the time. The command must never
// run.
func TestSubmitPreCancelledContext(t *testing.T) {
	s := newTestServer(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var ran atomic.Int64
	// Many attempts: before the fix this enqueued with probability ~1/2
	// per attempt, so 200 tries fail with probability ~1 - 2^-200.
	for i := 0; i < 200; i++ {
		err := s.Submit(ctx, func(*manager.Manager) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit with dead context: %v, want context.Canceled", err)
		}
	}
	// Drain the loop so any sneaked-in command would have executed.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d commands ran despite pre-cancelled context", n)
	}
	if n := s.Processed(); n != 0 {
		t.Fatalf("loop processed %d commands, want 0", n)
	}
}

// TestShutdownRacesMixedSubmits fires Shutdown mid-burst while workers
// issue the full mutating + read op mix, and checks the exactly-once
// contract: afterwards the loop's processed count equals the number of
// calls that got real answers.
func TestShutdownRacesMixedSubmits(t *testing.T) {
	s := newTestServer(t, 8)
	nodes := s.Graph().NumNodes()
	links := s.Graph().NumLinks()
	spec := qos.DefaultSpec()

	var answered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(9000 + w))
			ctx := context.Background()
			for {
				var err error
				switch draw := src.Float64(); {
				case draw < 0.50:
					a, b := src.Intn(nodes), src.Intn(nodes)
					if a == b {
						b = (b + 1) % nodes
					}
					_, err = s.Establish(ctx, topology.NodeID(a), topology.NodeID(b), spec)
					if errors.Is(err, manager.ErrRejected) {
						err = nil
					}
				case draw < 0.65:
					_, err = s.FailLink(ctx, topology.LinkID(src.Intn(links)))
					if errors.Is(err, server.ErrConflict) {
						err = nil
					}
				case draw < 0.80:
					_, err = s.RepairLink(ctx, topology.LinkID(src.Intn(links)))
					if errors.Is(err, server.ErrConflict) {
						err = nil
					}
				case draw < 0.95:
					_, err = s.Snapshot(ctx)
				default:
					err = s.CheckInvariants(ctx)
				}
				if errors.Is(err, server.ErrServerClosed) {
					return
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				answered.Add(1)
			}
		}(w)
	}

	time.Sleep(15 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no commands answered before shutdown; test proves nothing")
	}
	if got := s.Processed(); got != answered.Load() {
		t.Errorf("loop processed %d, callers got %d answers (dropped or double-applied)", got, answered.Load())
	}
}

// TestShutdownDrainExpiredContext wedges the loop and calls Shutdown with
// an already-expired context: the call must give up with the context's
// error but still close admission; once the wedge lifts, a second
// Shutdown observes the completed drain and every accepted command ran.
func TestShutdownDrainExpiredContext(t *testing.T) {
	s := newTestServer(t, 4)
	release := make(chan struct{})
	var ran atomic.Int64
	if err := s.Submit(context.Background(), func(*manager.Manager) {
		<-release
		ran.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), func(*manager.Manager) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown with expired context: %v, want context.Canceled", err)
	}
	// Admission is closed even though the drain wait was abandoned.
	if err := s.Submit(context.Background(), func(*manager.Manager) {}); !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("submit after abandoned shutdown: %v, want ErrServerClosed", err)
	}

	close(release)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if n := ran.Load(); n != 2 {
		t.Fatalf("%d accepted commands ran, want 2 (accepted work must survive an abandoned drain wait)", n)
	}
}

func newDegradedTestServer(t *testing.T, onDegrade func(string)) *server.Server {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(g, manager.Config{Capacity: 10000}, server.Options{
		QueueDepth: 64, OnDegrade: onDegrade,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// corrupt plants an aggregate-ledger corruption through the command loop,
// so the next audit must fail.
func corrupt(t *testing.T, s *server.Server) {
	t.Helper()
	if err := s.Submit(context.Background(), func(m *manager.Manager) {
		m.CorruptAggregatesForTesting()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedMode forces an invariant violation and checks the failure
// contract end to end: the server flips degraded exactly once, refuses
// every mutation with ErrDegraded, and keeps answering reads.
func TestDegradedMode(t *testing.T) {
	var degradeCalls atomic.Int64
	s := newDegradedTestServer(t, func(reason string) {
		degradeCalls.Add(1)
		if reason == "" {
			t.Error("OnDegrade fired with empty reason")
		}
	})
	defer s.Shutdown(context.Background())
	ctx := context.Background()
	spec := qos.DefaultSpec()

	// Healthy first: a connection goes in, audit is clean.
	rep, err := s.Establish(ctx, 0, 5, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(ctx); err != nil {
		t.Fatalf("clean audit: %v", err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("degraded before any violation")
	}

	corrupt(t, s)
	// The audit discovers the corruption and that discovery itself flips
	// the server.
	if err := s.CheckInvariants(ctx); !manager.IsInvariantViolation(err) {
		t.Fatalf("audit after corruption: %v, want InvariantViolation", err)
	}
	deg, reason := s.Degraded()
	if !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q after dirty audit", deg, reason)
	}
	if n := s.InvariantViolations(); n < 1 {
		t.Fatalf("InvariantViolations() = %d, want >= 1", n)
	}

	// All four mutations are refused.
	if _, err := s.Establish(ctx, 1, 2, spec); !errors.Is(err, server.ErrDegraded) {
		t.Errorf("establish while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.Terminate(ctx, rep.Conn.ID); !errors.Is(err, server.ErrDegraded) {
		t.Errorf("terminate while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.FailLink(ctx, 0); !errors.Is(err, server.ErrDegraded) {
		t.Errorf("fail link while degraded: %v, want ErrDegraded", err)
	}
	if _, err := s.RepairLink(ctx, 0); !errors.Is(err, server.ErrDegraded) {
		t.Errorf("repair link while degraded: %v, want ErrDegraded", err)
	}

	// Reads stay up and reflect the failure.
	st, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot while degraded: %v", err)
	}
	if !st.Degraded || st.DegradedReason == "" || st.InvariantViolations < 1 {
		t.Errorf("snapshot degraded fields: %+v", st)
	}
	if st.Alive != 1 {
		t.Errorf("snapshot alive = %d while degraded, want 1 (reads must still work)", st.Alive)
	}

	// Repeated dirty audits bump the counter but fire OnDegrade only once.
	_ = s.CheckInvariants(ctx)
	if n := degradeCalls.Load(); n != 1 {
		t.Errorf("OnDegrade fired %d times, want exactly 1", n)
	}
}

// TestDegradedHTTP checks the HTTP surface of degraded mode: mutations
// answer 503, /v1/invariants and /v1/stats report the state, /metrics
// exposes the gauge and counter.
func TestDegradedHTTP(t *testing.T) {
	s := newDegradedTestServer(t, nil)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	corrupt(t, s)
	code, raw := doJSON(t, c, "GET", ts.URL+"/v1/invariants", nil, nil)
	if code != http.StatusInternalServerError || !strings.Contains(raw, `"degraded": true`) {
		t.Fatalf("invariants after corruption: %d %s", code, raw)
	}

	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("establish while degraded: %d (%s), want 503", code, raw)
	}

	var st server.Stats
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/stats", nil, &st)
	if code != http.StatusOK || !st.Degraded || st.DegradedReason == "" {
		t.Errorf("stats while degraded: %d %s", code, raw)
	}

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"drqos_degraded 1", "drqos_invariant_violations_total"} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q in:\n%s", want, mb)
		}
	}
}

// TestFrozenSnapshotMetric: degraded mode suspends epoch publishing, so the
// snapshot age climbs by design; the drqos_snapshot_frozen gauge must flip
// to 1 (and Stats.Epoch.Frozen to true) so dashboards can tell a frozen
// read path from a wedged loop — and staleness alarms can exclude it.
func TestFrozenSnapshotMetric(t *testing.T) {
	s := newDegradedTestServer(t, nil)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	scrape := func() string {
		t.Helper()
		resp, err := c.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		mb, _ := io.ReadAll(resp.Body)
		return string(mb)
	}

	// Healthy: not frozen, in both /metrics and /v1/stats.
	if mb := scrape(); !strings.Contains(mb, "drqos_snapshot_frozen 0") {
		t.Fatalf("healthy server: want drqos_snapshot_frozen 0 in:\n%s", mb)
	}
	st := s.StatsView()
	if st.Epoch == nil || st.Epoch.Frozen {
		t.Fatalf("healthy server: Epoch.Frozen = %+v, want false", st.Epoch)
	}

	corrupt(t, s)
	if err := s.CheckInvariants(context.Background()); !manager.IsInvariantViolation(err) {
		t.Fatalf("audit after corruption: %v, want InvariantViolation", err)
	}
	if mb := scrape(); !strings.Contains(mb, "drqos_snapshot_frozen 1") {
		t.Fatalf("degraded server: want drqos_snapshot_frozen 1 in:\n%s", mb)
	}
	st = s.StatsView()
	if st.Epoch == nil || !st.Epoch.Frozen {
		t.Fatalf("degraded server: Epoch.Frozen = %+v, want true", st.Epoch)
	}
}
