package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind enumerates the mutation events a journal can record — the four
// commands the admission server's command loop applies to the manager,
// plus the two-phase-commit phases a shard journals for cross-shard
// reservations (prepare pins a rigid local sub-path; commit finalizes it;
// abort is an ordinary terminate of the pinned connection).
type Kind uint8

// Journaled event kinds. Values are part of the on-disk format; never
// renumber them.
const (
	KindEstablish  Kind = 1
	KindTerminate  Kind = 2
	KindFailLink   Kind = 3
	KindRepairLink Kind = 4
	KindPrepare    Kind = 5
	KindCommit     Kind = 6
	// KindTerm fences replication roles: a standby journals the new
	// monotonic term number the instant it promotes, so any replica (or a
	// rejoining ex-primary) that replays the log knows which node won and
	// refuses records from a stale term. No manager state changes.
	KindTerm Kind = 7
)

func (k Kind) String() string {
	switch k {
	case KindEstablish:
		return "establish"
	case KindTerminate:
		return "terminate"
	case KindFailLink:
		return "fail_link"
	case KindRepairLink:
		return "repair_link"
	case KindPrepare:
		return "prepare"
	case KindCommit:
		return "commit"
	case KindTerm:
		return "term"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one durable mutation record. It carries the full seed-derived
// inputs of the command — enough to re-apply it against a deterministic
// manager and land in the same state. Fields irrelevant to the kind are
// zero. Seq is assigned by Append and is strictly monotonic from 1.
type Event struct {
	Seq  uint64
	Kind Kind

	// Establish inputs: endpoints plus the full elastic spec.
	Src, Dst                  int32
	MinKbps, MaxKbps, IncKbps int64
	Utility                   float64

	// Terminate target.
	Conn int64

	// FailLink / RepairLink target.
	Link int32

	// Two-phase-commit fields (KindPrepare, KindCommit). Txn is the
	// coordinator-assigned transaction ID; Peers is a bitmask of the
	// participating shard indices (which is why a deployment is capped at
	// 32 shards); the path slices are the shard-local sub-path the prepare
	// pins, in shard-local node/link IDs. A prepare reuses the Establish
	// spec fields for the rigid reservation.
	Txn       uint64
	Peers     uint32
	PathNodes []int32
	PathLinks []int32

	// Term is the replication term a KindTerm record fences (monotonic,
	// bumped by every promotion).
	Term uint64
}

// castagnoli is the CRC-32C table used for every checksum in the journal
// (records and snapshot bodies).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecord bounds a single record's payload. Real events are tens of
// bytes; anything larger is garbage (a torn or corrupted length prefix).
const maxRecord = 1 << 16

// frameHeaderSize is the per-record framing overhead: u32 payload length +
// u32 CRC-32C of the payload.
const frameHeaderSize = 8

// appendEvent encodes ev's payload (no framing) onto buf.
func appendEvent(buf []byte, ev Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, ev.Seq)
	buf = append(buf, byte(ev.Kind))
	switch ev.Kind {
	case KindEstablish:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Src))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.MinKbps))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.MaxKbps))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.IncKbps))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Utility))
	case KindTerminate:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.Conn))
	case KindFailLink, KindRepairLink:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Link))
	case KindPrepare:
		buf = binary.LittleEndian.AppendUint64(buf, ev.Txn)
		buf = binary.LittleEndian.AppendUint32(buf, ev.Peers)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Src))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.MinKbps))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.MaxKbps))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.IncKbps))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Utility))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ev.PathNodes)))
		for _, n := range ev.PathNodes {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
		}
		for _, l := range ev.PathLinks {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
		}
	case KindCommit:
		buf = binary.LittleEndian.AppendUint64(buf, ev.Txn)
	case KindTerm:
		buf = binary.LittleEndian.AppendUint64(buf, ev.Term)
	}
	return buf
}

// decodeEvent parses one payload produced by appendEvent. It is strict:
// trailing bytes or a short payload are errors (the CRC already passed, so
// a length mismatch means a format bug, not bit rot).
func decodeEvent(payload []byte) (Event, error) {
	var ev Event
	if len(payload) < 9 {
		return ev, fmt.Errorf("journal: payload too short (%d bytes)", len(payload))
	}
	ev.Seq = binary.LittleEndian.Uint64(payload)
	ev.Kind = Kind(payload[8])
	rest := payload[9:]
	need := func(n int) error {
		if len(rest) != n {
			return fmt.Errorf("journal: %s payload is %d bytes, want %d", ev.Kind, len(rest), n)
		}
		return nil
	}
	switch ev.Kind {
	case KindEstablish:
		if err := need(40); err != nil {
			return ev, err
		}
		ev.Src = int32(binary.LittleEndian.Uint32(rest))
		ev.Dst = int32(binary.LittleEndian.Uint32(rest[4:]))
		ev.MinKbps = int64(binary.LittleEndian.Uint64(rest[8:]))
		ev.MaxKbps = int64(binary.LittleEndian.Uint64(rest[16:]))
		ev.IncKbps = int64(binary.LittleEndian.Uint64(rest[24:]))
		ev.Utility = math.Float64frombits(binary.LittleEndian.Uint64(rest[32:]))
	case KindTerminate:
		if err := need(8); err != nil {
			return ev, err
		}
		ev.Conn = int64(binary.LittleEndian.Uint64(rest))
	case KindFailLink, KindRepairLink:
		if err := need(4); err != nil {
			return ev, err
		}
		ev.Link = int32(binary.LittleEndian.Uint32(rest))
	case KindPrepare:
		// Fixed part (54 bytes incl. the u16 node count) + nodes + n-1 links.
		if len(rest) < 54 {
			return ev, fmt.Errorf("journal: prepare payload is %d bytes, want >= 54", len(rest))
		}
		ev.Txn = binary.LittleEndian.Uint64(rest)
		ev.Peers = binary.LittleEndian.Uint32(rest[8:])
		ev.Src = int32(binary.LittleEndian.Uint32(rest[12:]))
		ev.Dst = int32(binary.LittleEndian.Uint32(rest[16:]))
		ev.MinKbps = int64(binary.LittleEndian.Uint64(rest[20:]))
		ev.MaxKbps = int64(binary.LittleEndian.Uint64(rest[28:]))
		ev.IncKbps = int64(binary.LittleEndian.Uint64(rest[36:]))
		ev.Utility = math.Float64frombits(binary.LittleEndian.Uint64(rest[44:]))
		n := int(binary.LittleEndian.Uint16(rest[52:]))
		if n < 2 {
			return ev, fmt.Errorf("journal: prepare path has %d nodes, want >= 2", n)
		}
		if err := need(54 + 4*n + 4*(n-1)); err != nil {
			return ev, err
		}
		ev.PathNodes = make([]int32, n)
		ev.PathLinks = make([]int32, n-1)
		off := 54
		for i := range ev.PathNodes {
			ev.PathNodes[i] = int32(binary.LittleEndian.Uint32(rest[off:]))
			off += 4
		}
		for i := range ev.PathLinks {
			ev.PathLinks[i] = int32(binary.LittleEndian.Uint32(rest[off:]))
			off += 4
		}
	case KindCommit:
		if err := need(8); err != nil {
			return ev, err
		}
		ev.Txn = binary.LittleEndian.Uint64(rest)
	case KindTerm:
		if err := need(8); err != nil {
			return ev, err
		}
		ev.Term = binary.LittleEndian.Uint64(rest)
	default:
		return ev, fmt.Errorf("journal: unknown event kind %d", uint8(ev.Kind))
	}
	return ev, nil
}

// appendFrame wraps payload in the on-disk framing: u32 length, u32 CRC-32C,
// payload.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// frameAt tries to parse one frame at data[off:]. It returns the decoded
// event and the offset just past the frame. ok=false means the bytes at off
// do not form a valid frame; reason says why.
func frameAt(data []byte, off int) (ev Event, next int, ok bool, reason string) {
	if len(data)-off < frameHeaderSize {
		return ev, 0, false, "short frame header"
	}
	ln := int(binary.LittleEndian.Uint32(data[off:]))
	want := binary.LittleEndian.Uint32(data[off+4:])
	if ln == 0 || ln > maxRecord {
		return ev, 0, false, fmt.Sprintf("implausible record length %d", ln)
	}
	if off+frameHeaderSize+ln > len(data) {
		return ev, 0, false, fmt.Sprintf("record length %d runs past end of segment", ln)
	}
	payload := data[off+frameHeaderSize : off+frameHeaderSize+ln]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return ev, 0, false, fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	e, err := decodeEvent(payload)
	if err != nil {
		return ev, 0, false, err.Error()
	}
	return e, off + frameHeaderSize + ln, true, ""
}
