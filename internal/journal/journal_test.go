package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		switch i % 4 {
		case 0:
			evs[i] = Event{Kind: KindEstablish, Src: int32(i), Dst: int32(i + 1),
				MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1}
		case 1:
			evs[i] = Event{Kind: KindTerminate, Conn: int64(i)}
		case 2:
			evs[i] = Event{Kind: KindFailLink, Link: int32(i)}
		default:
			evs[i] = Event{Kind: KindRepairLink, Link: int32(i)}
		}
	}
	return evs
}

func mustOpen(t *testing.T, dir string) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir, Options{FsyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func mustAppend(t *testing.T, j *Journal, evs ...Event) {
	t.Helper()
	for _, ev := range evs {
		if _, err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// onlySegment returns the path of the single wal segment in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, have %v", segs)
	}
	return segs[0]
}

func TestEmptyDirColdStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh") // Open must create it
	j, rec := mustOpen(t, dir)
	defer j.Close()
	if rec.SnapshotSeq != 0 || rec.LastSeq != 0 || len(rec.Events) != 0 || rec.TornBytes != 0 {
		t.Fatalf("cold start recovered %+v", rec)
	}
	if seq, err := j.Append(Event{Kind: KindFailLink, Link: 3}); err != nil || seq != 1 {
		t.Fatalf("first append: seq %d, err %v", seq, err)
	}
}

func TestRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	evs := testEvents(25)
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, evs...)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if len(rec.Events) != len(evs) {
		t.Fatalf("recovered %d events, want %d", len(rec.Events), len(evs))
	}
	for i, got := range rec.Events {
		want := evs[i]
		want.Seq = uint64(i + 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if rec.LastSeq != uint64(len(evs)) {
		t.Fatalf("LastSeq %d, want %d", rec.LastSeq, len(evs))
	}
	// Appends continue the sequence after reopen.
	if seq, err := j2.Append(Event{Kind: KindTerminate, Conn: 9}); err != nil || seq != uint64(len(evs)+1) {
		t.Fatalf("append after reopen: seq %d, err %v", seq, err)
	}
}

// Test2PCRecordRoundTrip: prepare and commit records — the sharded plane's
// transaction phases — survive append/reopen with their variable-length
// path payloads intact, and a malformed prepare payload is rejected.
func Test2PCRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	evs := []Event{
		{Kind: KindPrepare, Txn: 7, Peers: 0b101, Src: 3, Dst: 9,
			MinKbps: 200, MaxKbps: 200, IncKbps: 200, Utility: 1,
			PathNodes: []int32{3, 5, 9}, PathLinks: []int32{2, 8}},
		{Kind: KindCommit, Txn: 7},
		{Kind: KindPrepare, Txn: 8, Peers: 0b11, Src: 0, Dst: 1,
			MinKbps: 100, MaxKbps: 100, IncKbps: 100, Utility: 0.5,
			PathNodes: []int32{0, 1}, PathLinks: []int32{0}},
		{Kind: KindTerminate, Conn: 1},
	}
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, evs...)
	j.Close()

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if len(rec.Events) != len(evs) {
		t.Fatalf("recovered %d events, want %d", len(rec.Events), len(evs))
	}
	for i, got := range rec.Events {
		want := evs[i]
		want.Seq = uint64(i + 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}

	// A prepare with a degenerate path must not encode/decode silently.
	if _, err := decodeEvent(appendEvent(nil, Event{Kind: KindPrepare, Txn: 1,
		PathNodes: []int32{4}, PathLinks: nil})); err == nil {
		t.Fatal("single-node prepare path decoded without error")
	}
}

func TestTornTailDiscardedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(10)...)
	j.Close()

	// Simulate a mid-write crash: chop the final record in half.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if len(rec.Events) != 9 {
		t.Fatalf("recovered %d events, want clean prefix of 9", len(rec.Events))
	}
	if rec.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The torn bytes are physically gone: the next append lands where the
	// torn record was and must survive the next reopen.
	if seq, err := j2.Append(Event{Kind: KindFailLink, Link: 42}); err != nil || seq != 10 {
		t.Fatalf("append after torn tail: seq %d, err %v", seq, err)
	}
	j2.Close()
	_, rec3 := mustOpen(t, dir)
	if len(rec3.Events) != 10 || rec3.Events[9].Link != 42 {
		t.Fatalf("post-torn append lost: %+v", rec3.Events)
	}
}

func TestMidJournalCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(10)...)
	j.Close()

	// Flip a byte inside an early record's payload: the CRC fails but valid
	// records follow, so this is NOT a torn tail.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+3] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-journal corruption: err %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "valid records follow") {
		t.Fatalf("error does not explain the refusal: %v", err)
	}
}

func TestSnapshotBoundsReplayAndCleansSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(6)...)
	if err := j.WriteSnapshot(SnapshotHeader{Alive: 3}, []byte("state-at-6")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Event{Kind: KindFailLink, Link: 7}, Event{Kind: KindRepairLink, Link: 7})
	j.Close()

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if rec.SnapshotSeq != 6 || string(rec.SnapshotBody) != "state-at-6" {
		t.Fatalf("snapshot: seq %d body %q", rec.SnapshotSeq, rec.SnapshotBody)
	}
	if rec.SnapshotHeader.Alive != 3 {
		t.Fatalf("header aggregate lost: %+v", rec.SnapshotHeader)
	}
	if len(rec.Events) != 2 || rec.Events[0].Seq != 7 || rec.Events[1].Seq != 8 {
		t.Fatalf("tail after snapshot: %+v", rec.Events)
	}
	// The pre-snapshot segment was rotated out and deleted.
	if seg := onlySegment(t, dir); filepath.Base(seg) != segmentName(7) {
		t.Fatalf("active segment %s, want %s", filepath.Base(seg), segmentName(7))
	}
}

func TestCrashBetweenSnapshotAndSegmentDelete(t *testing.T) {
	// A crash after the snapshot fsyncs but before the old segment (and old
	// snapshot) are deleted leaves superseded files. Replay must use the
	// newest snapshot and skip events it covers, even though they are still
	// on disk.
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(4)...)
	if err := j.WriteSnapshot(SnapshotHeader{}, []byte("state-at-4")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, testEvents(3)...)
	j.Close()

	// Reconstruct the crash window: copy the current files into a fresh dir
	// and add back a stale pre-snapshot segment and a stale older snapshot,
	// exactly what WriteSnapshot would have deleted.
	crash := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	staleDir := t.TempDir()
	js, _ := mustOpen(t, staleDir)
	mustAppend(t, js, testEvents(4)...)
	js.Close()
	stale, err := os.ReadFile(onlySegment(t, staleDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crash, segmentName(1)), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotFile(crash, 2, SnapshotHeader{}, []byte("old")); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, crash)
	defer j2.Close()
	if rec.SnapshotSeq != 4 || string(rec.SnapshotBody) != "state-at-4" {
		t.Fatalf("wrong snapshot won: seq %d body %q", rec.SnapshotSeq, rec.SnapshotBody)
	}
	if len(rec.Events) != 3 || rec.Events[0].Seq != 5 {
		t.Fatalf("stale segment not skipped: %+v", rec.Events)
	}
}

func TestSnapshotCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(3)...)
	if err := j.WriteSnapshot(SnapshotHeader{}, []byte("precious state")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, have %v", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot body: err %v, want ErrCorrupt", err)
	}
}

func TestLeftoverTmpFilesRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapshotName(5)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, rec := mustOpen(t, dir)
	defer j.Close()
	if rec.LastSeq != 0 {
		t.Fatalf("tmp file influenced recovery: %+v", rec)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived Open: %v", err)
	}
}

func TestReloadSeesAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()
	mustAppend(t, j, testEvents(5)...)
	rec, err := j.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 5 || rec.LastSeq != 5 {
		t.Fatalf("reload: %d events, LastSeq %d", len(rec.Events), rec.LastSeq)
	}
}

// TestWriteSnapshotIdempotentAtTip: snapshotting when nothing was journaled
// since the last snapshot (including a fresh journal at seq 0) must be a
// no-op, not a collision with the already-rotated active segment.
func TestWriteSnapshotIdempotentAtTip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()

	// Fresh journal, seq 0: nothing to cover.
	if err := j.WriteSnapshot(SnapshotHeader{}, nil); err != nil {
		t.Fatalf("snapshot of empty journal: %v", err)
	}
	if j.SnapshotSeq() != 0 {
		t.Fatalf("empty snapshot recorded seq %d", j.SnapshotSeq())
	}

	mustAppend(t, j, testEvents(5)...)
	if err := j.WriteSnapshot(SnapshotHeader{Seq: 5}, []byte("state")); err != nil {
		t.Fatal(err)
	}
	if j.SnapshotSeq() != 5 {
		t.Fatalf("snapshot seq %d, want 5", j.SnapshotSeq())
	}
	// Again with no new events: must not rotate or error.
	if err := j.WriteSnapshot(SnapshotHeader{Seq: 5}, []byte("state")); err != nil {
		t.Fatalf("repeat snapshot at tip: %v", err)
	}
	mustAppend(t, j, testEvents(3)...)
	if seq, err := j.Append(Event{Kind: KindFailLink, Link: 1}); err != nil || seq != 9 {
		t.Fatalf("append after idempotent snapshots: seq %d, err %v", seq, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir)
	if rec.SnapshotSeq != 5 || rec.LastSeq != 9 || len(rec.Events) != 4 {
		t.Fatalf("reopen recovered snap=%d last=%d events=%d", rec.SnapshotSeq, rec.LastSeq, len(rec.Events))
	}
}
