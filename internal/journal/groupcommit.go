// Group commit: amortizing the per-record fsync across concurrent
// appenders while keeping the FsyncEvery:1 durability contract — no record
// is reported durable before an fsync covering it returned.
//
// The mechanics split the old synchronous Append into two halves:
//
//   - AppendAsync writes the framed record under the journal mutex and
//     returns its sequence number immediately. The record is on its way to
//     disk but NOT yet durable.
//   - WaitDurable parks the caller on a commit ticket until a committer
//     goroutine has fsynced a batch covering that sequence number.
//
// The committer syncs the first pending record immediately (a lone
// sequential writer sees per-append fsync latency, exactly like before) and
// only opens an accumulation window — bounded by Options.GroupCommitMaxWait
// — when more than one record is already pending, i.e. when a concurrent
// burst is actually forming a batch worth waiting for. One fsync then
// releases every ticket in the batch.
//
// An fsync failure is sticky: it poisons the journal, fails every parked
// and future ticket, and refuses further appends — a record whose
// durability is unknown must never be acknowledged.
package journal

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrAbandoned reports that the journal was abandoned without a final sync
// (crash simulation); parked commit tickets fail instead of blocking.
var ErrAbandoned = errors.New("journal: abandoned")

// groupState is the ledger shared by appenders, ticket waiters and the
// committer goroutine. Lock order: j.mu may be held when taking gc.mu,
// never the reverse.
type groupState struct {
	mu      sync.Mutex
	wake    *sync.Cond // appenders → committer: new frames need syncing
	durable *sync.Cond // committer → waiters: syncedSeq advanced / journal died

	writeSeq  uint64 // highest sequence written to a segment file
	syncedSeq uint64 // highest sequence known durable
	err       error  // sticky: the first fsync failure poisons the journal
	closing   bool   // Close/Abandon began; the committer must exit
	closed    bool   // terminal: syncedSeq will never advance again

	started bool
	done    chan struct{} // closed when the committer goroutine exits

	batches        int64 // fsyncs the committer issued
	batchedAppends int64 // records those fsyncs made durable
}

func newGroupState(lastSeq uint64) *groupState {
	gc := &groupState{writeSeq: lastSeq, syncedSeq: lastSeq, done: make(chan struct{})}
	gc.wake = sync.NewCond(&gc.mu)
	gc.durable = sync.NewCond(&gc.mu)
	return gc
}

// GroupCommit reports whether the journal batches fsyncs.
func (j *Journal) GroupCommit() bool { return j.opt.GroupCommit }

// SyncedSeq returns the highest sequence number known durable. Only
// meaningful in group-commit mode; other fsync policies track durability
// per Append and report 0 here.
func (j *Journal) SyncedSeq() uint64 {
	j.gc.mu.Lock()
	defer j.gc.mu.Unlock()
	return j.gc.syncedSeq
}

// GroupCommitStats returns how many fsync batches the committer issued and
// how many records those batches covered. batchedAppends/batches is the
// realized amortization factor.
func (j *Journal) GroupCommitStats() (batches, batchedAppends int64) {
	j.gc.mu.Lock()
	defer j.gc.mu.Unlock()
	return j.gc.batches, j.gc.batchedAppends
}

// AppendAsync assigns the next sequence number to ev and writes the framed
// record. In group-commit mode the record is NOT yet durable when this
// returns: the caller must not acknowledge the mutation before
// WaitDurable(seq) succeeds. Without group commit this is exactly Append
// (the configured fsync policy applies inline). The caller must append
// BEFORE mutating state (write-ahead discipline).
func (j *Journal) AppendAsync(ev Event) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev.Seq = j.seq + 1
	return j.appendLocked(ev)
}

// AppendReplicated appends a record that already carries its sequence
// number — a standby replaying a primary's stream keeps the primary's
// numbering so resume-from-seq and fingerprint verify points line up. The
// record must extend the log exactly (ev.Seq == LastSeq+1); durability
// semantics match AppendAsync (pair with WaitDurable in group-commit mode).
func (j *Journal) AppendReplicated(ev Event) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Seq != j.seq+1 {
		return 0, fmt.Errorf("journal: replicated record seq %d does not extend local tip %d", ev.Seq, j.seq)
	}
	return j.appendLocked(ev)
}

// appendLocked writes the framed record for ev (whose Seq the caller set)
// and applies the fsync policy. Caller holds j.mu.
func (j *Journal) appendLocked(ev Event) (uint64, error) {
	if j.f == nil {
		return 0, errors.New("journal: closed")
	}
	if j.opt.GroupCommit {
		j.gc.mu.Lock()
		gcErr := j.gc.err
		j.gc.mu.Unlock()
		if gcErr != nil {
			// Poisoned: a previous batch fsync failed. New records could
			// never be reported durable, so refuse them outright.
			return 0, gcErr
		}
	}
	j.buf = j.buf[:0]
	payload := appendEvent(nil, ev)
	j.buf = appendFrame(j.buf, payload)
	if _, err := j.f.Write(j.buf); err != nil {
		return 0, fmt.Errorf("journal: append seq %d: %w", ev.Seq, err)
	}
	if j.opt.GroupCommit {
		j.seq = ev.Seq
		j.gc.mu.Lock()
		j.gc.writeSeq = ev.Seq
		j.gc.wake.Signal()
		j.gc.mu.Unlock()
		return ev.Seq, nil
	}
	j.sinceSync++
	if j.opt.FsyncEvery > 0 && j.sinceSync >= j.opt.FsyncEvery {
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: fsync seq %d: %w", ev.Seq, err)
		}
		j.sinceSync = 0
	}
	j.seq = ev.Seq
	return ev.Seq, nil
}

// WaitDurable blocks until the record with sequence number seq is durable
// (an fsync covering it returned), the journal dies, or ctx does. A nil
// return is the durability acknowledgment. Without group commit it returns
// immediately — Append already applied the configured policy.
func (j *Journal) WaitDurable(ctx context.Context, seq uint64) error {
	if !j.opt.GroupCommit || seq == 0 {
		return nil
	}
	gc := j.gc
	gc.mu.Lock()
	if gc.syncedSeq >= seq {
		gc.mu.Unlock()
		return nil
	}
	gc.mu.Unlock()
	// A cancelled caller must not park forever; cond vars cannot select on a
	// context, so cancellation is turned into a broadcast.
	stop := context.AfterFunc(ctx, func() {
		gc.mu.Lock()
		gc.durable.Broadcast()
		gc.mu.Unlock()
	})
	defer stop()
	gc.mu.Lock()
	defer gc.mu.Unlock()
	for {
		if gc.syncedSeq >= seq {
			return nil
		}
		if gc.err != nil {
			return gc.err
		}
		if gc.closed {
			return fmt.Errorf("journal: closed before seq %d became durable", seq)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		gc.durable.Wait()
	}
}

// committer is the single goroutine that turns pending writes into durable
// batches: wait for work, optionally let a forming batch accumulate, fsync
// once, release every ticket the sync covered.
func (j *Journal) committer() {
	gc := j.gc
	defer close(gc.done)
	maxWait := j.opt.GroupCommitMaxWait
	for {
		gc.mu.Lock()
		for gc.writeSeq == gc.syncedSeq && gc.err == nil && !gc.closing {
			gc.wake.Wait()
		}
		if gc.closing || gc.err != nil {
			gc.mu.Unlock()
			return
		}
		target := gc.writeSeq
		gc.mu.Unlock()

		if maxWait > 0 {
			// Scoop up appenders that are already runnable by yielding the
			// processor instead of sleeping — timer granularity on small
			// machines (~1ms) would otherwise cost more than the fsync being
			// amortized, and workers released by the previous batch are often
			// one scheduler slice away from their next append. A lone writer
			// costs two no-op yields (~µs against a ~100µs fsync). Exit as
			// soon as the batch stops growing or the latency cap is reached.
			deadline := time.Now().Add(maxWait)
			idle := 0
			for idle < 2 && time.Now().Before(deadline) {
				runtime.Gosched()
				gc.mu.Lock()
				if gc.writeSeq > target {
					target = gc.writeSeq
					idle = 0
				} else {
					idle++
				}
				stop := gc.closing
				gc.mu.Unlock()
				if stop {
					break
				}
			}
		}

		j.mu.Lock()
		f := j.f
		j.mu.Unlock()
		var err error
		if f != nil {
			err = f.Sync()
		}

		gc.mu.Lock()
		switch {
		case gc.syncedSeq >= target:
			// A snapshot pre-sync or explicit Sync covered the batch first
			// (and may have rotated the file under us — any sync error above
			// came from the superseded segment and is moot).
		case err != nil:
			gc.err = fmt.Errorf("journal: group-commit fsync: %w", err)
		default:
			gc.batches++
			gc.batchedAppends += int64(target - gc.syncedSeq)
			gc.syncedSeq = target
		}
		gc.durable.Broadcast()
		gc.mu.Unlock()
	}
}

// markSyncedLocked records — under j.mu, after a successful fsync of the
// active segment — that every written record is durable, releasing parked
// commit tickets. Sync, Close and the snapshot pre-sync route through it so
// the committer never re-syncs work another path already made durable.
func (j *Journal) markSyncedLocked() {
	gc := j.gc
	gc.mu.Lock()
	if j.seq > gc.syncedSeq {
		gc.syncedSeq = j.seq
	}
	gc.durable.Broadcast()
	gc.mu.Unlock()
}

// stopCommitter asks the committer goroutine to exit and waits for it.
// poison, when non-nil, fails all parked and future tickets (Abandon).
func (j *Journal) stopCommitter(poison error) {
	gc := j.gc
	gc.mu.Lock()
	if poison != nil && gc.err == nil {
		gc.err = poison
	}
	gc.closing = true
	started := gc.started
	gc.wake.Broadcast()
	gc.durable.Broadcast()
	gc.mu.Unlock()
	if started {
		<-gc.done
	}
}

// Abandon closes the journal WITHOUT syncing — the crash-simulation
// counterpart of Close. Unsynced writes are at the mercy of the page cache,
// parked commit tickets fail with ErrAbandoned, and the files stay valid
// for a later Open (which sees whatever "survived the crash").
func (j *Journal) Abandon() error {
	j.stopCommitter(ErrAbandoned)
	j.mu.Lock()
	defer j.mu.Unlock()
	gc := j.gc
	gc.mu.Lock()
	gc.closed = true
	gc.durable.Broadcast()
	gc.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
