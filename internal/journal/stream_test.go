package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestReadFromBasic: the stream reader serves exactly the requested range,
// reports the tip with an empty slice, and honors the max bound.
func TestReadFromBasic(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()
	mustAppend(t, j, testEvents(10)...)

	got, err := j.ReadFrom(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 4 || got[2].Seq != 6 {
		t.Fatalf("ReadFrom(4,3) = %+v", got)
	}
	if got, err := j.ReadFrom(11, 100); err != nil || len(got) != 0 {
		t.Fatalf("read past tip: %v events, err %v", len(got), err)
	}
	if got, err := j.ReadFrom(0, 100); err != nil || len(got) != 10 {
		t.Fatalf("read from 0: %v events, err %v", len(got), err)
	}
}

// TestReadFromSpansSegmentRotation: a read range that crosses a segment
// boundary (the crash-leftover layout scanDir accepts: an old segment whose
// superseding snapshot never finished deleting it) is served contiguously.
func TestReadFromSpansSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(3)...)
	j.Close()

	// Hand-roll a second segment continuing the sequence, as a crash between
	// snapshot-triggered rotation steps would leave it.
	evs := testEvents(3)
	for i := range evs {
		evs[i].Seq = uint64(4 + i)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(4)), EncodeFrames(evs), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if rec.LastSeq != 6 {
		t.Fatalf("LastSeq %d, want 6", rec.LastSeq)
	}
	got, err := j2.ReadFrom(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Seq != 2 || got[4].Seq != 6 {
		t.Fatalf("cross-segment read = %+v", got)
	}
}

// TestReadFromCompaction: once a snapshot covers the requested range the
// reader reports ErrCompacted, and the snapshot + tail records it returns
// instead reproduce the full history.
func TestReadFromCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()
	mustAppend(t, j, testEvents(6)...)
	if err := j.WriteSnapshot(SnapshotHeader{Alive: 1}, []byte("state@6")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Event{Kind: KindTerminate, Conn: 42})

	if _, err := j.ReadFrom(3, 100); !errors.Is(err, ErrCompacted) {
		t.Fatalf("read below snapshot: err %v, want ErrCompacted", err)
	}
	hdr, body, err := j.LatestSnapshot()
	if err != nil || hdr == nil {
		t.Fatalf("LatestSnapshot: hdr %v err %v", hdr, err)
	}
	if hdr.Seq != 6 || string(body) != "state@6" {
		t.Fatalf("snapshot seq %d body %q", hdr.Seq, body)
	}
	tail, err := j.ReadFrom(hdr.Seq+1, 100)
	if err != nil || len(tail) != 1 || tail[0].Seq != 7 || tail[0].Conn != 42 {
		t.Fatalf("tail after snapshot: %+v, err %v", tail, err)
	}
}

// TestReadFromNeverServesTornTail: a torn final frame (mid-write crash) is
// invisible to the stream — a standby can only ever receive records that
// boot recovery would also keep.
func TestReadFromNeverServesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j, testEvents(5)...)
	j.Close()

	// A torn frame: plausible length prefix, truncated payload.
	f, err := os.OpenFile(onlySegment(t, dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn []byte
	torn = binary.LittleEndian.AppendUint32(torn, 40)
	torn = append(torn, 0xde, 0xad, 0xbe)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if rec.TornBytes == 0 {
		t.Fatal("expected a torn tail")
	}
	got, err := j2.ReadFrom(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("stream served %d records, want the 5 intact ones", len(got))
	}
}

// TestReplicatedResumeAfterRestart: a standby journal extends the
// primary's numbering via AppendReplicated, survives a restart (reopen
// reports the tip to resume from), discards its own torn tail exactly like
// boot recovery, and refuses a record that does not extend the log.
func TestReplicatedResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	evs := testEvents(5)
	for i, ev := range evs {
		ev.Seq = uint64(i + 1)
		if _, err := j.AppendReplicated(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order and gapped replicated appends are refused.
	if _, err := j.AppendReplicated(Event{Seq: 5, Kind: KindTerminate}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if _, err := j.AppendReplicated(Event{Seq: 9, Kind: KindTerminate}); err == nil {
		t.Fatal("gapped seq accepted")
	}
	j.Close()

	// Crash with a torn tail: reopen truncates it and the tip regresses, so
	// the standby re-requests the lost record from the primary.
	f, err := os.OpenFile(onlySegment(t, dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x00, 0x00, 0x00, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if rec.LastSeq != 5 || rec.TornBytes == 0 {
		t.Fatalf("reopen: LastSeq %d torn %d, want 5 and a discarded tail", rec.LastSeq, rec.TornBytes)
	}
	if _, err := j2.AppendReplicated(Event{Seq: 6, Kind: KindTerminate, Conn: 6}); err != nil {
		t.Fatalf("resume at 6: %v", err)
	}
}

// TestInstallSnapshotReplacesDivergentHistory: bootstrapping from a shipped
// snapshot wipes whatever the journal held — including records past the
// snapshot seq that a fenced ex-primary journaled but never replicated —
// and the journal continues from the snapshot's sequence number.
func TestInstallSnapshotReplacesDivergentHistory(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()
	mustAppend(t, j, testEvents(8)...) // divergent history to be discarded

	hdr := SnapshotHeader{Alive: 3, Term: 2}
	if err := j.InstallSnapshot(hdr, []byte("primary-state@5")); err == nil {
		t.Fatal("install with seq 0 must be refused")
	}
	hdr.Seq = 5
	if err := j.InstallSnapshot(hdr, []byte("primary-state@5")); err != nil {
		t.Fatal(err)
	}
	if j.LastSeq() != 5 || j.SnapshotSeq() != 5 {
		t.Fatalf("after install: last %d snap %d, want 5/5", j.LastSeq(), j.SnapshotSeq())
	}
	if _, err := j.ReadFrom(1, 10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("pre-snapshot reads after install: %v, want ErrCompacted", err)
	}
	if _, err := j.AppendReplicated(Event{Seq: 6, Kind: KindFailLink, Link: 1}); err != nil {
		t.Fatal(err)
	}

	// The wipe is durable: reopening sees only the snapshot and the new tail.
	j.Close()
	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if rec.SnapshotSeq != 5 || string(rec.SnapshotBody) != "primary-state@5" ||
		len(rec.Events) != 1 || rec.Events[0].Seq != 6 || rec.Term != 2 {
		t.Fatalf("reopen after install: %+v", rec)
	}
}

// TestTermRecordsAndRecovery: KindTerm records round-trip, raise
// Recovered.Term, and survive compaction via the snapshot header.
func TestTermRecordsAndRecovery(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	mustAppend(t, j,
		Event{Kind: KindFailLink, Link: 1},
		Event{Kind: KindTerm, Term: 3},
		Event{Kind: KindRepairLink, Link: 1},
	)
	j.Close()

	j2, rec := mustOpen(t, dir)
	if rec.Term != 3 {
		t.Fatalf("recovered term %d, want 3", rec.Term)
	}
	if !reflect.DeepEqual(rec.Events[1], Event{Seq: 2, Kind: KindTerm, Term: 3}) {
		t.Fatalf("term record round-trip: %+v", rec.Events[1])
	}
	// Compaction must carry the term in the snapshot header.
	if err := j2.WriteSnapshot(SnapshotHeader{Term: 3}, []byte("s")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, rec3 := mustOpen(t, dir)
	defer j3.Close()
	if rec3.Term != 3 || len(rec3.Events) != 0 {
		t.Fatalf("term lost across compaction: term %d, %d events", rec3.Term, len(rec3.Events))
	}
}

// TestFrameWireRoundTrip: the stream wire format is the on-disk frame
// format, checksums included; damage is detected, not tolerated.
func TestFrameWireRoundTrip(t *testing.T) {
	evs := testEvents(4)
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	buf := EncodeFrames(evs)
	got, err := DecodeFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("wire round-trip: got %+v want %+v", got, evs)
	}
	buf[len(buf)-1] ^= 0x40
	if _, err := DecodeFrames(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit: err %v, want ErrCorrupt", err)
	}
	if EventCRC(evs[0]) == EventCRC(evs[1]) {
		t.Fatal("distinct events share a CRC")
	}
}
