package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// writeSnapshotFile writes snap-<seq>.snap atomically: JSON header line +
// binary body into a temp file, fsync, rename, directory sync. A crash at
// any point leaves either no snapshot or a complete one — never a partial
// file under the final name.
func writeSnapshotFile(dir string, seq uint64, hdr SnapshotHeader, body []byte) error {
	hdr.Format = snapshotFormat
	hdr.Version = snapshotVersion
	hdr.Seq = seq
	hdr.BodyLen = int64(len(body))
	hdr.BodyCRC32C = crc32.Checksum(body, castagnoli)
	if hdr.WrittenAt == "" {
		hdr.WrittenAt = time.Now().UTC().Format(time.RFC3339)
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("journal: snapshot header: %w", err)
	}

	tmp := filepath.Join(dir, snapshotName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	w := bufio.NewWriter(f)
	if _, err := w.Write(append(hb, '\n')); err == nil {
		_, err = w.Write(body)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: writing snapshot %d: %w", seq, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName(seq))); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshot reads and verifies one snapshot file: header parse, format
// and version check, body length and CRC-32C.
func loadSnapshot(path string) (*SnapshotHeader, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, nil, fmt.Errorf("%w: snapshot %s has no header line", ErrCorrupt, filepath.Base(path))
	}
	var hdr SnapshotHeader
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		return nil, nil, fmt.Errorf("%w: snapshot %s header: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if hdr.Format != snapshotFormat {
		return nil, nil, fmt.Errorf("%w: snapshot %s has format %q, want %q", ErrCorrupt, filepath.Base(path), hdr.Format, snapshotFormat)
	}
	if hdr.Version != snapshotVersion {
		return nil, nil, fmt.Errorf("%w: snapshot %s has version %d, this build reads %d", ErrCorrupt, filepath.Base(path), hdr.Version, snapshotVersion)
	}
	body := raw[nl+1:]
	if int64(len(body)) != hdr.BodyLen {
		return nil, nil, fmt.Errorf("%w: snapshot %s body is %d bytes, header says %d", ErrCorrupt, filepath.Base(path), len(body), hdr.BodyLen)
	}
	if got := crc32.Checksum(body, castagnoli); got != hdr.BodyCRC32C {
		return nil, nil, fmt.Errorf("%w: snapshot %s body CRC %08x, header says %08x", ErrCorrupt, filepath.Base(path), got, hdr.BodyCRC32C)
	}
	return &hdr, body, nil
}
