// Package journal makes the admission server's state machine durable: a
// write-ahead event log plus periodic snapshots, replayed on startup to
// rebuild the exact pre-crash manager state.
//
// Layout of a data directory:
//
//	wal-00000000000000000001.log   length-prefixed, CRC-32C-checked event
//	wal-00000000000000000391.log   records; the filename is the sequence
//	                               number of the first record the segment
//	                               may contain
//	snap-00000000000000000390.snap one JSON header line + a binary state
//	                               body, written atomically (tmp + fsync +
//	                               rename); the name is the last sequence
//	                               number the snapshot covers
//
// Every mutation is appended — with its full seed-derived inputs and a
// monotonic sequence number — BEFORE the manager mutates, so a crash at any
// instant loses at most the response, never the decision. Recovery loads
// the newest snapshot, replays the records after it, and discards a torn
// tail (a partial final record from a mid-write crash) detected via CRC. A
// damaged record that valid records FOLLOW is not a torn tail: it is
// corruption in the middle of the log, and Open refuses with an error
// rather than silently dropping acknowledged events.
//
// The fsync policy is configurable (Options.FsyncEvery): 1 syncs every
// append (durable against power loss), N>1 amortizes, 0 leaves flushing to
// the OS (still durable against process crashes — the page cache survives
// kill -9 — but not power loss). Snapshot writes always fsync before the
// rename, and old segments are deleted only after the snapshot is durable.
package journal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrCorrupt reports unrecoverable journal damage: a bad record with valid
// records after it, a gap in the sequence numbering, or a snapshot whose
// body fails its checksum. A torn tail is NOT corruption — it is discarded
// silently (reported via Recovered.TornBytes).
var ErrCorrupt = errors.New("journal: corrupt")

// Options tunes a Journal.
type Options struct {
	// FsyncEvery controls how often Append calls fsync: 1 (the default)
	// syncs every record, N>1 every N records, negative never (tests).
	// Zero selects the default. Ignored with GroupCommit, which always
	// provides FsyncEvery:1 durability.
	FsyncEvery int
	// GroupCommit batches fsyncs across concurrent appenders: AppendAsync
	// writes the frame and returns, WaitDurable parks on a commit ticket,
	// and a committer goroutine fsyncs once per batch (see groupcommit.go).
	// The durability contract is identical to FsyncEvery:1 — no record is
	// reported durable before an fsync covering it returned — but N
	// concurrent appends cost one fsync instead of N.
	GroupCommit bool
	// GroupCommitMaxWait caps how long the committer lets a forming batch
	// accumulate before fsyncing it (default 2ms; negative disables the
	// accumulation window — each committer round syncs immediately). It
	// bounds the extra latency group commit may add to a single append.
	GroupCommitMaxWait time.Duration
}

// Recovered is what Open found on disk: the newest snapshot (if any) and
// the contiguous event tail after it. Feed it to the state rebuilder
// (server.Rebuild) to reconstruct the manager.
type Recovered struct {
	// SnapshotSeq is the sequence number the snapshot covers (0 = none).
	SnapshotSeq uint64
	// SnapshotHeader is the parsed JSON header of the snapshot, nil if none.
	SnapshotHeader *SnapshotHeader
	// SnapshotBody is the snapshot's opaque binary state body.
	SnapshotBody []byte
	// Events are the journal records with Seq > SnapshotSeq, contiguous and
	// ascending.
	Events []Event
	// LastSeq is the sequence number of the last durable record
	// (SnapshotSeq when Events is empty).
	LastSeq uint64
	// TornBytes counts bytes of torn tail discarded from the last segment.
	TornBytes int64
	// Term is the highest replication term found on disk — the max of the
	// snapshot header's term and every KindTerm record after it. Zero on a
	// journal that never participated in a failover.
	Term uint64
}

// Journal is an append-only event log over one data directory. Safe for
// use by one process at a time; methods are internally serialized.
type Journal struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File // active segment
	seq       uint64   // last appended (or recovered) sequence number
	snapSeq   uint64   // sequence covered by the newest snapshot
	sinceSync int
	buf       []byte

	// gc is the group-commit ledger (groupcommit.go), always allocated; the
	// committer goroutine runs only when opt.GroupCommit is set.
	gc *groupState
}

// Open scans dir (creating it if needed), verifies every record, discards a
// torn tail, and opens the last segment for appending. The returned
// Recovered holds everything needed to rebuild state; it is independent of
// the Journal and stays valid after Close.
func Open(dir string, opt Options) (*Journal, *Recovered, error) {
	if opt.FsyncEvery == 0 {
		opt.FsyncEvery = 1
	}
	if opt.GroupCommit && opt.GroupCommitMaxWait == 0 {
		opt.GroupCommitMaxWait = 2 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Leftover temp files are snapshots that never got renamed: dead.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, t := range tmps {
		_ = os.Remove(t)
	}
	rec, lastSeg, tornAt, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opt: opt, seq: rec.LastSeq, snapSeq: rec.SnapshotSeq}
	if lastSeg == "" {
		if err := j.startSegment(j.seq + 1); err != nil {
			return nil, nil, err
		}
	} else {
		f, err := os.OpenFile(lastSeg, os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		if tornAt >= 0 {
			if err := f.Truncate(tornAt); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
			}
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j.f = f
	}
	j.gc = newGroupState(j.seq)
	if opt.GroupCommit {
		j.gc.started = true
		go j.committer()
	}
	return j, rec, nil
}

// Reload rescans the directory read-only and returns a fresh Recovered. It
// is how degraded-mode recovery rebuilds state while the Journal stays
// open; no truncation or other mutation happens. Appends must be quiescent
// (they are: a degraded server refuses every mutation).
func (j *Journal) Reload() (*Recovered, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, _, _, err := scanDir(j.dir)
	return rec, err
}

// LastSeq returns the sequence number of the most recent record.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// SnapshotSeq returns the sequence number covered by the newest snapshot.
func (j *Journal) SnapshotSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapSeq
}

// Dir returns the data directory.
func (j *Journal) Dir() string { return j.dir }

// Append assigns the next sequence number to ev, writes the framed record,
// and applies the fsync policy; in group-commit mode it additionally waits
// for the record's batch to become durable, so a successful return carries
// the same guarantee in every mode. It returns the assigned sequence
// number. The caller must append BEFORE mutating state (write-ahead
// discipline). Callers that can overlap other work with the fsync should
// use AppendAsync + WaitDurable instead.
func (j *Journal) Append(ev Event) (uint64, error) {
	seq, err := j.AppendAsync(ev)
	if err != nil {
		return 0, err
	}
	if err := j.WaitDurable(context.Background(), seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// Sync flushes the active segment to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.markSyncedLocked()
	return nil
}

// Close syncs and closes the active segment. The directory stays valid for
// a later Open.
func (j *Journal) Close() error {
	j.stopCommitter(nil)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if err == nil {
		j.markSyncedLocked()
	}
	gc := j.gc
	gc.mu.Lock()
	gc.closed = true
	gc.durable.Broadcast()
	gc.mu.Unlock()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// startSegment creates wal-<firstSeq>.log and makes it the active segment.
// Caller holds j.mu (or the Journal is not yet shared).
func (j *Journal) startSegment(firstSeq uint64) error {
	path := filepath.Join(j.dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.f != nil {
		_ = j.f.Sync()
		_ = j.f.Close()
	}
	j.f = f
	j.sinceSync = 0
	return syncDir(j.dir)
}

func segmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%020d.log", firstSeq) }
func snapshotName(seq uint64) string     { return fmt.Sprintf("snap-%020d.snap", seq) }
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	return d.Sync()
}

// scanDir reads everything in dir: the newest snapshot plus every event
// after it. It returns the path of the last segment (for appending; ""
// when none exists) and the byte offset of a torn tail within it (-1 when
// the tail is clean).
func scanDir(dir string) (rec *Recovered, lastSeg string, tornAt int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", -1, fmt.Errorf("journal: %w", err)
	}
	var snapSeqs []uint64
	type seg struct {
		firstSeq uint64
		path     string
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, ok := parseSeqName(e.Name(), "snap-", ".snap"); ok {
			snapSeqs = append(snapSeqs, s)
		}
		if s, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, seg{firstSeq: s, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(snapSeqs, func(i, k int) bool { return snapSeqs[i] < snapSeqs[k] })
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstSeq < segs[k].firstSeq })

	rec = &Recovered{}
	tornAt = -1
	if len(snapSeqs) > 0 {
		s := snapSeqs[len(snapSeqs)-1]
		hdr, body, err := loadSnapshot(filepath.Join(dir, snapshotName(s)))
		if err != nil {
			return nil, "", -1, err
		}
		rec.SnapshotSeq, rec.SnapshotHeader, rec.SnapshotBody = s, hdr, body
		rec.Term = hdr.Term
	}
	rec.LastSeq = rec.SnapshotSeq

	next := rec.SnapshotSeq + 1 // the sequence number we expect next
	for si, sg := range segs {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return nil, "", -1, fmt.Errorf("journal: %w", err)
		}
		last := si == len(segs)-1
		off := 0
		for off < len(data) {
			ev, nextOff, ok, reason := frameAt(data, off)
			if !ok {
				if !last {
					return nil, "", -1, fmt.Errorf("%w: %s at offset %d: %s (followed by segment %s — not a torn tail)",
						ErrCorrupt, filepath.Base(sg.path), off, reason, filepath.Base(segs[si+1].path))
				}
				// A damaged record in the last segment is a torn tail only
				// if nothing valid follows. If the frame's declared length
				// is intact we can look past it; a valid record there means
				// acknowledged data follows the damage — real corruption.
				if _, _, ok2, _ := frameAt(data, skipFrame(data, off)); ok2 {
					return nil, "", -1, fmt.Errorf("%w: %s at offset %d: %s, but valid records follow — corruption in the middle of the log, refusing to guess; restore from a backup or remove the damaged segment by hand",
						ErrCorrupt, filepath.Base(sg.path), off, reason)
				}
				rec.TornBytes = int64(len(data) - off)
				tornAt = int64(off)
				break
			}
			// Records at or below the snapshot are superseded (a crash
			// between snapshot fsync and segment deletion leaves them).
			if ev.Seq <= rec.SnapshotSeq {
				off = nextOff
				continue
			}
			if ev.Seq != next {
				return nil, "", -1, fmt.Errorf("%w: %s holds seq %d where %d was expected (gap or duplicate)",
					ErrCorrupt, filepath.Base(sg.path), ev.Seq, next)
			}
			rec.Events = append(rec.Events, ev)
			rec.LastSeq = ev.Seq
			if ev.Kind == KindTerm && ev.Term > rec.Term {
				rec.Term = ev.Term
			}
			next = ev.Seq + 1
			off = nextOff
		}
	}
	if len(segs) > 0 {
		lastSeg = segs[len(segs)-1].path
	}
	return rec, lastSeg, tornAt, nil
}

// skipFrame returns the offset just past the frame at off, trusting its
// declared length when plausible. Used only to peek for valid records after
// a damaged one; when the length itself is garbage it returns len(data)
// (nothing to peek at — the damage extends to the tail).
func skipFrame(data []byte, off int) int {
	if len(data)-off < frameHeaderSize {
		return len(data)
	}
	ln := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
	if ln == 0 || ln > maxRecord || off+frameHeaderSize+ln > len(data) {
		return len(data)
	}
	return off + frameHeaderSize + ln
}

// WriteSnapshot durably records the state covering every event up to
// LastSeq: it writes the snapshot atomically (tmp + fsync + rename + dir
// sync), rotates to a fresh segment, and only then deletes the segments and
// snapshots the new snapshot supersedes. hdr's Seq/BodyLen/BodyCRC32C are
// filled in here; callers populate the state-describing fields.
func (j *Journal) WriteSnapshot(hdr SnapshotHeader, body []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	// Nothing journaled since the last snapshot (or ever, for a fresh
	// journal): the existing snapshot already covers the tip, and rotating
	// again would collide with the active wal-<seq+1> segment.
	if j.seq == j.snapSeq {
		return nil
	}
	// The active segment must be durable before the snapshot supersedes it:
	// if the snapshot fsyncs but a preceding record did not, a crash window
	// could lose an event the snapshot claims to cover.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: snapshot pre-sync: %w", err)
	}
	j.sinceSync = 0
	// The pre-sync made every written record durable: release parked
	// group-commit tickets now, before the rotation closes this segment
	// under the committer.
	j.markSyncedLocked()
	seq := j.seq
	if err := writeSnapshotFile(j.dir, seq, hdr, body); err != nil {
		return err
	}
	if err := j.startSegment(seq + 1); err != nil {
		return err
	}
	j.snapSeq = seq
	// Cleanup is best-effort: a crash here just leaves superseded files
	// that the next Open skips.
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "wal-", ".log"); ok && s <= seq {
			_ = os.Remove(filepath.Join(j.dir, e.Name()))
		}
		if s, ok := parseSeqName(e.Name(), "snap-", ".snap"); ok && s < seq {
			_ = os.Remove(filepath.Join(j.dir, e.Name()))
		}
	}
	return nil
}

// SnapshotHeader is the JSON first line of a snapshot file. Alongside the
// framing fields it mirrors the aggregate shapes of the server's /v1/stats
// snapshot (internal/server/snapshot.go), so operators can inspect a
// snapshot with head -1 | jq, and so the restore path can cross-check the
// rebuilt manager against what the snapshot claims — a disagreement means
// the replay machinery itself is broken, and startup refuses to serve.
type SnapshotHeader struct {
	Format     string `json:"format"`
	Version    int    `json:"version"`
	Seq        uint64 `json:"seq"`
	BodyLen    int64  `json:"body_len"`
	BodyCRC32C uint32 `json:"body_crc32c"`

	// Aggregate cross-check fields (same shapes as server Stats).
	Alive          int    `json:"alive"`
	Unprotected    int    `json:"unprotected"`
	LevelHistogram []int  `json:"level_histogram"`
	Requests       int64  `json:"requests"`
	Rejects        int64  `json:"rejects"`
	FailedLinks    []int  `json:"failed_links,omitempty"`
	WrittenAt      string `json:"written_at,omitempty"`

	// Term is the replication term in force when the snapshot was taken, so
	// compaction never erases the fencing a KindTerm record established.
	Term uint64 `json:"term,omitempty"`

	// Cross-shard coordinator counters (attempted / committed / aborted
	// two-phase establishes), stamped by the coordinator's snapshot-annotate
	// hook so the telemetry survives restarts. Zero on single-plane
	// journals. They are aggregates of the whole coordinator, not the one
	// shard; boot takes the max across shard snapshots.
	CrossAttempts  int64 `json:"cross_attempts,omitempty"`
	CrossCommitted int64 `json:"cross_committed,omitempty"`
	CrossAborted   int64 `json:"cross_aborted,omitempty"`

	// Txns carries committed cross-shard transactions whose pinned
	// connections are inside the snapshot body, so replay can rebuild the
	// shard's transaction table without the (now truncated) prepare and
	// commit records. Snapshots are never taken while a transaction is
	// still pending, so only committed entries appear here; absent on
	// single-shard journals (bit-identical to the pre-shard format).
	Txns []TxnSnapshot `json:"txns,omitempty"`
}

// TxnSnapshot is one committed cross-shard transaction in a snapshot
// header: its ID, the participating-shard bitmask from the prepare record,
// and the shard-local connection IDs it pinned.
type TxnSnapshot struct {
	Txn   uint64  `json:"txn"`
	Peers uint32  `json:"peers"`
	Conns []int64 `json:"conns"`
}

const (
	snapshotFormat  = "drqos-journal-snapshot"
	snapshotVersion = 1
)
