package journal

import (
	"sync/atomic"
	"testing"
	"time"
)

// The two benchmarks below measure the same workload — parallel appenders
// that each require FsyncEvery:1 durability before proceeding — under the
// two durability engines. Single pays one private fsync per record;
// GroupCommit batches concurrent records under one fsync. The box running
// CI has a single CPU, so parallelism is forced explicitly: the contention
// being measured is on the journal, not the scheduler.

const benchParallelism = 8

func benchAppend(b *testing.B, opt Options) {
	b.Helper()
	j, _, err := Open(b.TempDir(), opt)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	var src atomic.Int32
	b.SetParallelism(benchParallelism)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := src.Add(1)
		for pb.Next() {
			if _, err := j.Append(Event{Kind: KindEstablish, Src: w, Dst: w + 1, MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if j.opt.GroupCommit {
		batches, covered := j.GroupCommitStats()
		if batches > 0 {
			b.ReportMetric(float64(covered)/float64(batches), "appends/fsync")
		}
	}
}

func BenchmarkJournalAppendSingle(b *testing.B) {
	benchAppend(b, Options{FsyncEvery: 1})
}

func BenchmarkJournalAppendGroupCommit(b *testing.B) {
	benchAppend(b, Options{GroupCommit: true, GroupCommitMaxWait: 2 * time.Millisecond})
}
