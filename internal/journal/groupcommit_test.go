package journal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openGroup(t *testing.T, dir string) *Journal {
	t.Helper()
	j, rec, err := Open(dir, Options{GroupCommit: true, GroupCommitMaxWait: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 {
		t.Fatalf("fresh dir recovered seq %d", rec.LastSeq)
	}
	return j
}

// TestGroupCommitConcurrentAppends drives parallel appenders through
// AppendAsync + WaitDurable and checks the durability ledger: every
// acknowledged sequence is covered by SyncedSeq, the full history reads
// back contiguously, and the committer actually amortized (fewer fsync
// batches than records).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j := openGroup(t, dir)

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seq, err := j.AppendAsync(Event{Kind: KindEstablish, Src: int32(w), Dst: int32(i + 1), MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1})
				if err != nil {
					errs <- err
					return
				}
				if err := j.WaitDurable(context.Background(), seq); err != nil {
					errs <- err
					return
				}
				if synced := j.SyncedSeq(); synced < seq {
					errs <- fmt.Errorf("acked seq %d but SyncedSeq %d", seq, synced)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = workers * perWorker
	if got := j.LastSeq(); got != total {
		t.Fatalf("LastSeq %d, want %d", got, total)
	}
	if got := j.SyncedSeq(); got != total {
		t.Fatalf("SyncedSeq %d, want %d", got, total)
	}
	batches, covered := j.GroupCommitStats()
	if covered != total {
		t.Fatalf("batches covered %d records, want %d", covered, total)
	}
	if batches <= 0 || batches >= total {
		t.Fatalf("committer issued %d batches for %d records — no amortization", batches, total)
	}
	t.Logf("group commit: %d records in %d fsync batches (%.1fx amortization)",
		total, batches, float64(covered)/float64(batches))

	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != total || len(rec.Events) != total {
		t.Fatalf("reopen recovered seq %d with %d events, want %d", rec.LastSeq, len(rec.Events), total)
	}
	for i, ev := range rec.Events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestGroupCommitSequentialAppendIsDurablePerCall checks that a lone
// sequential writer sees the synchronous Append contract: each call returns
// only after its record is durable, with no batching partner to wait for.
func TestGroupCommitSequentialAppendIsDurablePerCall(t *testing.T) {
	j := openGroup(t, t.TempDir())
	defer j.Close()
	for i := 0; i < 20; i++ {
		seq, err := j.Append(Event{Kind: KindEstablish, Src: 0, Dst: 1, MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1})
		if err != nil {
			t.Fatal(err)
		}
		if synced := j.SyncedSeq(); synced < seq {
			t.Fatalf("Append returned seq %d before durable (synced %d)", seq, synced)
		}
	}
}

// TestGroupCommitSnapshotRotation interleaves snapshot writes (which rotate
// the active segment under the committer) with concurrent appends; every
// acknowledged record must survive a reopen.
func TestGroupCommitSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	j := openGroup(t, dir)
	for i := 0; i < 30; i++ {
		if _, err := j.Append(Event{Kind: KindEstablish, Src: 0, Dst: 1, MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := j.WriteSnapshot(SnapshotHeader{}, []byte{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 30 {
		t.Fatalf("recovered seq %d, want 30", rec.LastSeq)
	}
}

// TestGroupCommitAbandonFailsTickets: abandoning the journal (crash
// simulation) must wake parked waiters with ErrAbandoned instead of leaving
// them blocked, and refuse further appends.
func TestGroupCommitAbandonFailsTickets(t *testing.T) {
	dir := t.TempDir()
	// A huge accumulation window keeps the ticket parked long enough for
	// Abandon to race in... except the committer syncs a lone pending record
	// immediately, so park a second one right behind it via a slow path:
	// abandon from another goroutine while this one waits.
	j, _, err := Open(dir, Options{GroupCommit: true, GroupCommitMaxWait: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.AppendAsync(Event{Kind: KindEstablish, Src: 0, Dst: 1, MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- j.Abandon() }()
	// WaitDurable either returns nil (the committer won the race and synced
	// the record before Abandon) or ErrAbandoned — never hangs.
	werr := j.WaitDurable(context.Background(), seq)
	if werr != nil && !errors.Is(werr, ErrAbandoned) {
		t.Fatalf("WaitDurable after abandon: %v", werr)
	}
	if err := <-done; err != nil {
		t.Fatalf("abandon: %v", err)
	}
	if _, err := j.AppendAsync(Event{Kind: KindTerminate, Conn: 1}); err == nil {
		t.Fatal("append after abandon succeeded")
	}
	// The directory must still open (whatever survived is a valid prefix).
	if _, _, err := Open(dir, Options{}); err != nil {
		t.Fatalf("reopen after abandon: %v", err)
	}
}

// TestGroupCommitWaitDurableHonorsContext: a cancelled caller unparks with
// the context error instead of waiting for a batch that may never close.
func TestGroupCommitWaitDurableHonorsContext(t *testing.T) {
	j := openGroup(t, t.TempDir())
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Seq far beyond anything written: without the context this would park
	// forever.
	if err := j.WaitDurable(ctx, 999); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitDurable with dead ctx: %v", err)
	}
}

// TestNonGroupJournalUnaffected: without GroupCommit the async API degrades
// to the synchronous contract and WaitDurable is a no-op, so callers can be
// mode-oblivious.
func TestNonGroupJournalUnaffected(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.AppendAsync(Event{Kind: KindEstablish, Src: 0, Dst: 1, MinKbps: 100, MaxKbps: 500, IncKbps: 50, Utility: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WaitDurable(context.Background(), seq); err != nil {
		t.Fatalf("WaitDurable without group commit: %v", err)
	}
	if j.GroupCommit() {
		t.Fatal("GroupCommit() true without the option")
	}
	if err := j.Abandon(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err != nil {
		t.Fatalf("reopen after abandon: %v", err)
	}
	// The segment file must still be present and openable.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no wal segment after abandon")
	}
	if _, err := os.Stat(segs[0]); err != nil {
		t.Fatal(err)
	}
}
