// Streaming read access for replication: a primary serves its journal to
// warm standbys record-by-record (ReadFrom), bootstraps a far-behind or
// brand-new standby from the newest snapshot (LatestSnapshot /
// InstallSnapshot on the receiving side), and the standby appends what it
// received under the primary's own sequence numbers (AppendReplicated in
// groupcommit.go). Reads are safe concurrently with appends: a record's
// frame is fully written to the segment before its sequence number becomes
// visible, and ReadFrom never reads past the durable tip, so a reader can
// never observe a half-written frame below the range it returns.
package journal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ErrCompacted reports that the requested sequence range has been folded
// into a snapshot: the records no longer exist individually. The caller
// should bootstrap from LatestSnapshot instead.
var ErrCompacted = errors.New("journal: requested records compacted into a snapshot")

// DurableSeq returns the highest sequence number a reader may rely on:
// the synced tip under group commit, the appended tip otherwise (where
// Append applies the fsync policy inline before returning).
func (j *Journal) DurableSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.durableSeqLocked()
}

func (j *Journal) durableSeqLocked() uint64 {
	if j.opt.GroupCommit {
		j.gc.mu.Lock()
		defer j.gc.mu.Unlock()
		return j.gc.syncedSeq
	}
	return j.seq
}

// ReadFrom returns up to max events with Seq >= from, ascending and
// contiguous, bounded by the durable tip. An empty slice means the caller
// is at the tip (long-pollers sleep and retry). ErrCompacted means from is
// at or below the newest snapshot — the records were deleted, bootstrap
// from the snapshot. Safe concurrently with appends and snapshots.
func (j *Journal) ReadFrom(from uint64, max int) ([]Event, error) {
	if from == 0 {
		from = 1
	}
	if max <= 0 {
		max = 1024
	}
	j.mu.Lock()
	durable := j.durableSeqLocked()
	snapSeq := j.snapSeq
	j.mu.Unlock()
	if from <= snapSeq {
		return nil, ErrCompacted
	}
	if from > durable {
		return nil, nil
	}

	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	type seg struct {
		firstSeq uint64
		path     string
	}
	var segs []seg
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, seg{firstSeq: s, path: filepath.Join(j.dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstSeq < segs[k].firstSeq })

	var out []Event
	next := from
	for si, sg := range segs {
		// A segment can only hold seqs in [its name, the next segment's name).
		if si+1 < len(segs) && segs[si+1].firstSeq <= next {
			continue
		}
		if sg.firstSeq > durable {
			break
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			if os.IsNotExist(err) {
				// A concurrent snapshot deleted it under us; the records it
				// held are covered by that snapshot now.
				return nil, ErrCompacted
			}
			return nil, fmt.Errorf("journal: %w", err)
		}
		off := 0
		for off < len(data) {
			ev, nextOff, ok, _ := frameAt(data, off)
			if !ok {
				// Only the in-flight tail past the durable bound can be
				// unparseable mid-read; stop at what we have.
				return out, nil
			}
			off = nextOff
			if ev.Seq < next {
				continue // superseded duplicate or below the requested range
			}
			if ev.Seq > durable {
				return out, nil
			}
			if ev.Seq != next {
				return nil, fmt.Errorf("%w: %s holds seq %d where %d was expected", ErrCorrupt, filepath.Base(sg.path), ev.Seq, next)
			}
			out = append(out, ev)
			next++
			if len(out) >= max {
				return out, nil
			}
		}
	}
	return out, nil
}

// LatestSnapshot loads the newest snapshot on disk, or (nil, nil, nil)
// when none exists. The header still carries its framing fields
// (Seq/BodyLen/BodyCRC32C), so the pair can be fed to InstallSnapshot on
// another journal as-is.
func (j *Journal) LatestSnapshot() (*SnapshotHeader, []byte, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	best := uint64(0)
	found := false
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "snap-", ".snap"); ok && (!found || s > best) {
			best, found = s, true
		}
	}
	if !found {
		return nil, nil, nil
	}
	return loadSnapshot(filepath.Join(j.dir, snapshotName(best)))
}

// InstallSnapshot replaces the journal's entire contents with a snapshot
// shipped from a primary: every existing segment and snapshot is deleted
// (including any divergent suffix a fenced ex-primary may hold), the
// snapshot is written durably, and a fresh segment starts at hdr.Seq+1.
// The caller must be quiescent — no concurrent appends or waiters. A crash
// mid-install leaves either the old journal with a truncated tail or the
// new snapshot alone; both recover cleanly and re-sync from the primary.
func (j *Journal) InstallSnapshot(hdr SnapshotHeader, body []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if hdr.Seq == 0 {
		return errors.New("journal: snapshot with seq 0")
	}
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// Close the active segment before deleting history so the fresh segment
	// below is the only open file.
	_ = j.f.Close()
	j.f = nil
	for _, e := range entries {
		_, isSeg := parseSeqName(e.Name(), "wal-", ".log")
		_, isSnap := parseSeqName(e.Name(), "snap-", ".snap")
		if isSeg || isSnap {
			if err := os.Remove(filepath.Join(j.dir, e.Name())); err != nil {
				return fmt.Errorf("journal: clearing for snapshot install: %w", err)
			}
		}
	}
	if err := writeSnapshotFile(j.dir, hdr.Seq, hdr, body); err != nil {
		return err
	}
	if err := j.startSegment(hdr.Seq + 1); err != nil {
		return err
	}
	j.seq, j.snapSeq, j.sinceSync = hdr.Seq, hdr.Seq, 0
	gc := j.gc
	gc.mu.Lock()
	gc.writeSeq, gc.syncedSeq = hdr.Seq, hdr.Seq
	gc.durable.Broadcast()
	gc.mu.Unlock()
	return nil
}

// EventCRC returns the CRC-32C of ev's canonical payload encoding — the
// same checksum the on-disk frame stores. Replication uses it as a cheap
// history-identity probe: a standby reports the CRC of its last record and
// the primary compares it against its own record at that seq; a mismatch
// means the histories diverged and the standby must re-bootstrap.
func EventCRC(ev Event) uint32 {
	return crc32.Checksum(appendEvent(nil, ev), castagnoli)
}

// EncodeFrames renders events in the on-disk frame format (u32 length, u32
// CRC-32C, payload) — the wire format of the replication stream, so the
// standby applies exactly the checksummed bytes a journal would hold.
func EncodeFrames(evs []Event) []byte {
	var buf []byte
	for _, ev := range evs {
		buf = appendFrame(buf, appendEvent(nil, ev))
	}
	return buf
}

// DecodeFrames parses a buffer of frames produced by EncodeFrames. Unlike
// boot recovery there is no torn-tail tolerance: the transport delivered
// the buffer whole, so any damage is an error.
func DecodeFrames(data []byte) ([]Event, error) {
	var out []Event
	off := 0
	for off < len(data) {
		ev, next, ok, reason := frameAt(data, off)
		if !ok {
			return nil, fmt.Errorf("%w: stream frame at offset %d: %s", ErrCorrupt, off, reason)
		}
		out = append(out, ev)
		off = next
	}
	return out, nil
}
