package stats

import (
	"math"
	"sort"
	"strings"
	"testing"

	"drqos/internal/rng"
)

func TestNewP2QuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Errorf("NewP2Quantile(%v): want error", p)
		}
	}
}

func TestP2QuantileEmptyAndSmall(t *testing.T) {
	q, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Empty estimator: NaN, not 0 — zero is a legitimate quantile for real
	// streams, so "no data" needs an unambiguous sentinel.
	if got := q.Value(); !math.IsNaN(got) {
		t.Errorf("empty Value() = %v, want NaN", got)
	}
	// Fewer than five samples: exact nearest-rank median.
	for _, x := range []float64{5, 1, 3} {
		q.Observe(x)
	}
	if got := q.Value(); got != 3 {
		t.Errorf("median of {5,1,3} = %v, want 3", got)
	}
	if q.N() != 3 {
		t.Errorf("N() = %d, want 3", q.N())
	}
}

// exactQuantile is the sort-based reference the streaming estimate is
// checked against.
func exactQuantile(xs []float64, p float64) float64 {
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	i := int(math.Ceil(p*float64(len(c)))) - 1
	if i < 0 {
		i = 0
	}
	return c[i]
}

func TestP2QuantileAccuracy(t *testing.T) {
	src := rng.New(13)
	draws := map[string]func() float64{
		"uniform":     src.Float64,
		"exponential": func() float64 { return src.Exp(2.0) },
	}
	for name, draw := range draws {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			est, err := NewP2Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := draw()
				xs = append(xs, x)
				est.Observe(x)
			}
			want := exactQuantile(xs, p)
			got := est.Value()
			if rel := math.Abs(got-want) / want; rel > 0.05 {
				t.Errorf("%s p%v: streaming %v vs exact %v (rel err %.3f)", name, p, got, want, rel)
			}
		}
	}
}

func TestP2QuantileConstantStream(t *testing.T) {
	q, _ := NewP2Quantile(0.9)
	for i := 0; i < 1000; i++ {
		q.Observe(7)
	}
	if got := q.Value(); got != 7 {
		t.Errorf("constant stream p90 = %v, want 7", got)
	}
}

func BenchmarkP2QuantileObserve(b *testing.B) {
	q, err := NewP2Quantile(0.99)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Exp(1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Observe(xs[i%len(xs)])
	}
}

func TestDigestEmptyRendersNA(t *testing.T) {
	d := NewDigest()
	if !math.IsNaN(d.P50()) || !math.IsNaN(d.P90()) || !math.IsNaN(d.P99()) {
		t.Errorf("empty digest quantiles = %v/%v/%v, want NaN", d.P50(), d.P90(), d.P99())
	}
	want := "mean=n/a p50=n/a p90=n/a p99=n/a max=n/a (n=0)"
	if got := d.String(); got != want {
		t.Errorf("empty String() = %q, want %q", got, want)
	}
	d.Observe(1)
	if s := d.String(); strings.Contains(s, "n/a") || strings.Contains(s, "NaN") {
		t.Errorf("non-empty String() = %q, want numeric figures", s)
	}
}

func TestDigestMonotoneAndMoments(t *testing.T) {
	d := NewDigest()
	src := rng.New(99)
	for i := 0; i < 5000; i++ {
		d.Observe(src.Exp(1.0))
	}
	p50, p90, p99 := d.P50(), d.P90(), d.P99()
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	if d.N() != 5000 {
		t.Errorf("N() = %d, want 5000", d.N())
	}
	if d.Min() < 0 || d.Max() < p99 {
		t.Errorf("moments inconsistent: min=%v max=%v p99=%v", d.Min(), d.Max(), p99)
	}
	// Exp(1) has median ln 2 ≈ 0.693 and p99 ≈ 4.605.
	if math.Abs(p50-math.Ln2) > 0.08 {
		t.Errorf("p50 = %v, want ≈ %v", p50, math.Ln2)
	}
	if math.Abs(p99-4.605) > 0.7 {
		t.Errorf("p99 = %v, want ≈ 4.605", p99)
	}
}
