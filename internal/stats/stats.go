// Package stats provides the statistical accumulators used by the simulator
// and the experiment harness: running moments (Welford), time-weighted
// averages for piecewise-constant signals such as reserved bandwidth,
// confidence intervals, histograms, and the empirical transition counters
// from which the paper's A, B and T matrices are estimated.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates a sample mean and variance using Welford's online
// algorithm. The zero value is ready for use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples observed.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance, or 0 with <2 samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observed sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observed sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean. With fewer than 2 samples it returns 0.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// Merge folds another accumulator into this one (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// TimeWeighted integrates a piecewise-constant signal over simulated time.
// Observe(t, v) declares that the signal takes value v from time t onward;
// calls must have non-decreasing t. The zero value is ready for use.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	area     float64
	duration float64
}

// Observe records a signal change to value v at time t.
func (w *TimeWeighted) Observe(t, v float64) {
	if w.started {
		if t < w.lastT {
			panic(fmt.Sprintf("stats: TimeWeighted time went backwards: %v < %v", t, w.lastT))
		}
		dt := t - w.lastT
		w.area += w.lastV * dt
		w.duration += dt
	}
	w.started = true
	w.lastT, w.lastV = t, v
}

// CloseAt finalizes the integral at time t without changing the value.
func (w *TimeWeighted) CloseAt(t float64) { w.Observe(t, w.lastV) }

// Mean returns the time-weighted average, or 0 with zero elapsed time.
func (w *TimeWeighted) Mean() float64 {
	if w.duration == 0 {
		return 0
	}
	return w.area / w.duration
}

// Duration returns the total elapsed time integrated so far.
func (w *TimeWeighted) Duration() float64 { return w.duration }

// Histogram counts samples in equal-width bins over [lo, hi); samples
// outside the range fall into saturating under/overflow bins.
type Histogram struct {
	lo, hi    float64
	bins      []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram returns a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, n)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, n)}, nil
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
		if i == len(h.bins) { // guard against fp rounding at the top edge
			i--
		}
		h.bins[i]++
	}
}

// Count returns the count of bin i.
func (h *Histogram) Count(i int) int { return h.bins[i] }

// Total returns the total number of samples including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.underflow, h.overflow }

// Quantile returns an approximate q-quantile (0..1) from the binned data,
// attributing each bin's mass to its midpoint.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if cum >= target {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		cum += float64(c)
		if cum >= target {
			return h.lo + (float64(i)+0.5)*width
		}
	}
	return h.hi
}

// String renders a compact textual bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	width := (h.hi - h.lo) / float64(len(h.bins))
	maxCount := 1
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.bins {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n", h.lo+float64(i)*width, h.lo+float64(i+1)*width, c, bar)
	}
	return b.String()
}

// Mean of a float64 slice; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median of a float64 slice; 0 for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := make([]float64, n)
	copy(c, xs)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
