package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory using
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the target quantile, the two midpoints and the maximum, and are
// adjusted with a piecewise-parabolic height formula as samples arrive.
// The load generator uses it for p50/p99 latency without retaining every
// sample. Construct with NewP2Quantile; the zero value is not ready.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights q_i (the first n entries, unsorted, while n < 5)
	pos     [5]float64 // actual marker positions n_i, 1-based
	want    [5]float64 // desired marker positions n'_i
	dWant   [5]float64 // per-observation desired-position increments
}

// NewP2Quantile returns an estimator for the q-quantile, 0 < q < 1.
func NewP2Quantile(q float64) (*P2Quantile, error) {
	if math.IsNaN(q) || q <= 0 || q >= 1 {
		return nil, fmt.Errorf("stats: quantile %v outside (0,1)", q)
	}
	e := &P2Quantile{p: q}
	e.dWant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e, nil
}

// P returns the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// N returns the number of samples observed.
func (e *P2Quantile) N() int { return e.n }

// Observe adds one sample.
func (e *P2Quantile) Observe(x float64) {
	if e.n < 5 {
		e.heights[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.heights[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}

	// Locate the cell k with q_k <= x < q_{k+1}, extending the extremes.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dWant[i]
	}
	e.n++

	// Move interior markers toward their desired positions, one step at
	// most, preferring the parabolic height prediction when it preserves
	// monotonicity.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if h := e.parabolic(i, s); e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	q, n := e.heights, e.pos
	return q[i] + d/(n[i+1]-n[i-1])*((n[i]-n[i-1]+d)*(q[i+1]-q[i])/(n[i+1]-n[i])+
		(n[i+1]-n[i]-d)*(q[i]-q[i-1])/(n[i]-n[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five samples
// it is exact (nearest-rank on the retained samples); with none it is NaN —
// "no data" must not be mistakable for a measured zero-latency quantile, as
// 0 is a legitimate estimate for real sample streams.
func (e *P2Quantile) Value() float64 {
	switch {
	case e.n == 0:
		return math.NaN()
	case e.n < 5:
		s := make([]float64, e.n)
		copy(s, e.heights[:e.n])
		sort.Float64s(s)
		i := int(math.Ceil(e.p*float64(e.n))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return e.heights[2]
}

// Digest bundles the summary a latency report needs: running moments
// (mean, min, max via Running) plus streaming p50/p90/p99 estimates, all in
// constant memory. The zero value is not ready; construct with NewDigest.
type Digest struct {
	Running
	q50, q90, q99 *P2Quantile
}

// NewDigest returns an empty latency digest.
func NewDigest() *Digest {
	q50, _ := NewP2Quantile(0.50)
	q90, _ := NewP2Quantile(0.90)
	q99, _ := NewP2Quantile(0.99)
	return &Digest{q50: q50, q90: q90, q99: q99}
}

// Observe adds one sample to every tracker.
func (d *Digest) Observe(x float64) {
	d.Running.Observe(x)
	d.q50.Observe(x)
	d.q90.Observe(x)
	d.q99.Observe(x)
}

// P50 returns the streaming median estimate.
func (d *Digest) P50() float64 { return d.q50.Value() }

// P90 returns the streaming 90th-percentile estimate.
func (d *Digest) P90() float64 { return d.q90.Value() }

// P99 returns the streaming 99th-percentile estimate.
func (d *Digest) P99() float64 { return d.q99.Value() }

// String renders the digest on one line in the samples' own units. With no
// samples every figure reads "n/a": an empty digest must not be mistaken
// for one that measured all-zero latencies.
func (d *Digest) String() string {
	if d.N() == 0 {
		return "mean=n/a p50=n/a p90=n/a p99=n/a max=n/a (n=0)"
	}
	return fmt.Sprintf("mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g (n=%d)",
		d.Mean(), d.P50(), d.P90(), d.P99(), d.Max(), d.N())
}
