package stats

import "fmt"

// TransitionCounter accumulates observed state jumps of channels between the
// N bandwidth states and converts them into the empirical conditional jump
// matrices A (downward, on arrival/failure), B (upward, indirectly chained
// on arrival) and T (upward, on termination) that the paper's Markov model
// consumes (§3.3: "the probabilities of transitioning from one state to
// another ... are obtained through simulations").
//
// Probabilities are conditioned on the originating state: row i of Probs()
// is the distribution of the destination state given that a channel in state
// i experienced the event AND changed state. Self-loops (no change) are
// counted separately so that callers can also recover the per-event change
// probability.
type TransitionCounter struct {
	n      int
	counts [][]int // counts[i][j]: observed jumps i -> j, i != j
	stays  []int   // event observed in state i, no state change
}

// NewTransitionCounter returns a counter over n states. It panics if n <= 0.
func NewTransitionCounter(n int) *TransitionCounter {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewTransitionCounter(%d)", n))
	}
	c := &TransitionCounter{
		n:      n,
		counts: make([][]int, n),
		stays:  make([]int, n),
	}
	for i := range c.counts {
		c.counts[i] = make([]int, n)
	}
	return c
}

// N returns the number of states.
func (c *TransitionCounter) N() int { return c.n }

// Record notes that a channel in state from ended the event in state to.
// Out-of-range states panic: they indicate a simulator bug, not bad data.
func (c *TransitionCounter) Record(from, to int) {
	if from < 0 || from >= c.n || to < 0 || to >= c.n {
		panic(fmt.Sprintf("stats: transition %d->%d outside [0,%d)", from, to, c.n))
	}
	if from == to {
		c.stays[from]++
		return
	}
	c.counts[from][to]++
}

// Count returns the raw jump count from i to j.
func (c *TransitionCounter) Count(i, j int) int {
	if i == j {
		return c.stays[i]
	}
	return c.counts[i][j]
}

// Events returns the total number of recorded events originating in state i
// (including no-change events).
func (c *TransitionCounter) Events(i int) int {
	t := c.stays[i]
	for _, v := range c.counts[i] {
		t += v
	}
	return t
}

// Probs returns the conditional jump matrix P[i][j] = P(next state j | event
// in state i caused a change). Rows with no observed changes are all zero.
func (c *TransitionCounter) Probs() [][]float64 {
	p := make([][]float64, c.n)
	for i := range p {
		p[i] = make([]float64, c.n)
		var total int
		for _, v := range c.counts[i] {
			total += v
		}
		if total == 0 {
			continue
		}
		for j, v := range c.counts[i] {
			p[i][j] = float64(v) / float64(total)
		}
	}
	return p
}

// ChangeProb returns, for each state i, the probability that an event
// observed in state i changed the state at all. States with no events
// report 0.
func (c *TransitionCounter) ChangeProb() []float64 {
	out := make([]float64, c.n)
	for i := range out {
		ev := c.Events(i)
		if ev == 0 {
			continue
		}
		out[i] = float64(ev-c.stays[i]) / float64(ev)
	}
	return out
}

// Merge folds another counter (with the same state count) into this one.
func (c *TransitionCounter) Merge(o *TransitionCounter) error {
	if o.n != c.n {
		return fmt.Errorf("stats: merging counters of size %d and %d", c.n, o.n)
	}
	for i := 0; i < c.n; i++ {
		c.stays[i] += o.stays[i]
		for j := 0; j < c.n; j++ {
			c.counts[i][j] += o.counts[i][j]
		}
	}
	return nil
}

// TotalJumps returns the total number of recorded state changes.
func (c *TransitionCounter) TotalJumps() int {
	var t int
	for i := range c.counts {
		for _, v := range c.counts[i] {
			t += v
		}
	}
	return t
}

// Ratio tracks a binary proportion (e.g. the paper's Pf and Ps
// probabilities) with exact integer counts.
type Ratio struct {
	hits, total int64
}

// Observe records one trial.
func (r *Ratio) Observe(hit bool) {
	r.total++
	if hit {
		r.hits++
	}
}

// ObserveN records many trials at once.
func (r *Ratio) ObserveN(hits, total int64) {
	r.hits += hits
	r.total += total
}

// Value returns the proportion, or 0 with no trials.
func (r *Ratio) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// Total returns the number of trials.
func (r *Ratio) Total() int64 { return r.total }
