package stats

import (
	"fmt"
	"math"
)

// BatchMeans estimates a confidence interval for the time average of a
// correlated, piecewise-constant signal (like the simulator's average
// reserved bandwidth) using the method of batch means: the observation
// window is cut into equal-duration batches, each batch's time-weighted
// mean is treated as one approximately independent sample, and a normal
// interval is formed over the batch means.
//
// The zero value is not usable; construct with NewBatchMeans.
type BatchMeans struct {
	batches   int
	start     float64
	end       float64
	windowSet bool

	started bool
	lastT   float64
	lastV   float64

	// area/duration accumulated per batch index.
	areas     []float64
	durations []float64
}

// NewBatchMeans returns an accumulator that will divide [start, end) into
// the given number of equal batches.
func NewBatchMeans(start, end float64, batches int) (*BatchMeans, error) {
	if batches < 2 {
		return nil, fmt.Errorf("stats: need >=2 batches, got %d", batches)
	}
	if end <= start {
		return nil, fmt.Errorf("stats: empty batch window [%v,%v)", start, end)
	}
	return &BatchMeans{
		batches:   batches,
		start:     start,
		end:       end,
		windowSet: true,
		areas:     make([]float64, batches),
		durations: make([]float64, batches),
	}, nil
}

// batchIndex maps a time to its batch, clamped to the window.
func (b *BatchMeans) batchIndex(t float64) int {
	frac := (t - b.start) / (b.end - b.start)
	i := int(frac * float64(b.batches))
	if i < 0 {
		i = 0
	}
	if i >= b.batches {
		i = b.batches - 1
	}
	return i
}

// Observe records that the signal takes value v from time t onward. Calls
// must have non-decreasing t; segments outside the window are clipped.
func (b *BatchMeans) Observe(t, v float64) {
	if b.started {
		if t < b.lastT {
			panic(fmt.Sprintf("stats: BatchMeans time went backwards: %v < %v", t, b.lastT))
		}
		b.integrate(b.lastT, t, b.lastV)
	}
	b.started = true
	b.lastT, b.lastV = t, v
}

// CloseAt finalizes the integral at time t.
func (b *BatchMeans) CloseAt(t float64) { b.Observe(t, b.lastV) }

// integrate adds the constant segment [t0, t1) at value v, split across
// batch boundaries.
func (b *BatchMeans) integrate(t0, t1, v float64) {
	// Clip to the window.
	if t1 <= b.start || t0 >= b.end {
		return
	}
	if t0 < b.start {
		t0 = b.start
	}
	if t1 > b.end {
		t1 = b.end
	}
	width := (b.end - b.start) / float64(b.batches)
	for t0 < t1 {
		i := b.batchIndex(t0)
		batchEnd := b.start + float64(i+1)*width
		segEnd := t1
		if batchEnd < segEnd {
			segEnd = batchEnd
		}
		dt := segEnd - t0
		if dt <= 0 {
			// Guard against fp stalls at batch boundaries.
			t0 = math.Nextafter(t0, t1)
			continue
		}
		b.areas[i] += v * dt
		b.durations[i] += dt
		t0 = segEnd
	}
}

// Estimate returns the grand time average and the half-width of the 95%
// confidence interval over the batch means. Batches with no observed time
// are excluded; at least 2 covered batches are required.
func (b *BatchMeans) Estimate() (mean, halfWidth float64, err error) {
	var means []float64
	var totalArea, totalDur float64
	for i := 0; i < b.batches; i++ {
		if b.durations[i] <= 0 {
			continue
		}
		means = append(means, b.areas[i]/b.durations[i])
		totalArea += b.areas[i]
		totalDur += b.durations[i]
	}
	if len(means) < 2 {
		return 0, 0, fmt.Errorf("stats: only %d covered batches", len(means))
	}
	grand := totalArea / totalDur
	var r Running
	for _, m := range means {
		r.Observe(m)
	}
	return grand, r.CI95(), nil
}
