package stats

import (
	"math"
	"testing"
	"testing/quick"

	"drqos/internal/rng"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Fatal("zero value not clean")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Observe(3)
	if r.Mean() != 3 || r.Variance() != 0 || r.CI95() != 0 {
		t.Fatalf("single sample: mean=%v var=%v ci=%v", r.Mean(), r.Variance(), r.CI95())
	}
}

func TestRunningCI95Shrinks(t *testing.T) {
	src := rng.New(1)
	var small, large Running
	for i := 0; i < 100; i++ {
		small.Observe(src.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Observe(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	src := rng.New(2)
	var whole, a, b Running
	for i := 0; i < 1000; i++ {
		x := src.Float64()*10 - 5
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged var %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Observe(1)
	a.Merge(&b) // no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 5)
	w.CloseAt(10)
	if w.Mean() != 5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if w.Duration() != 10 {
		t.Fatalf("duration = %v", w.Duration())
	}
}

func TestTimeWeightedSteps(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 0)
	w.Observe(1, 10) // value 0 for 1s
	w.Observe(3, 4)  // value 10 for 2s
	w.CloseAt(4)     // value 4 for 1s
	want := (0*1 + 10*2 + 4*1) / 4.0
	if math.Abs(w.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", w.Mean(), want)
	}
}

func TestTimeWeightedZeroDuration(t *testing.T) {
	var w TimeWeighted
	w.Observe(5, 42)
	if w.Mean() != 0 {
		t.Fatalf("zero-duration mean = %v", w.Mean())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	var w TimeWeighted
	w.Observe(5, 1)
	w.Observe(4, 1)
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.999, -1, 10, 100} {
		h.Observe(x)
	}
	if h.Count(0) != 2 { // 0, 1.9
		t.Fatalf("bin 0 = %d", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(2) != 1 || h.Count(4) != 1 {
		t.Fatalf("bins: %d %d %d", h.Count(1), h.Count(2), h.Count(4))
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 2 {
		t.Fatalf("under/over = %d/%d", u, o)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median estimate %v", med)
	}
	if h.Quantile(0) > 1 {
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
}

func TestHistogramStringSmoke(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	h.Observe(0.5)
	if len(h.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty slices")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestTransitionCounter(t *testing.T) {
	c := NewTransitionCounter(3)
	c.Record(2, 0)
	c.Record(2, 0)
	c.Record(2, 1)
	c.Record(2, 2) // stay
	c.Record(0, 1)
	p := c.Probs()
	if math.Abs(p[2][0]-2.0/3.0) > 1e-12 || math.Abs(p[2][1]-1.0/3.0) > 1e-12 {
		t.Fatalf("row 2 = %v", p[2])
	}
	if p[0][1] != 1 {
		t.Fatalf("row 0 = %v", p[0])
	}
	if p[1][0] != 0 && p[1][2] != 0 {
		t.Fatalf("row 1 should be empty: %v", p[1])
	}
	if c.Events(2) != 4 {
		t.Fatalf("events(2) = %d", c.Events(2))
	}
	cp := c.ChangeProb()
	if math.Abs(cp[2]-0.75) > 1e-12 {
		t.Fatalf("changeProb(2) = %v", cp[2])
	}
	if c.TotalJumps() != 4 {
		t.Fatalf("TotalJumps = %d", c.TotalJumps())
	}
	if c.Count(2, 0) != 2 || c.Count(2, 2) != 1 {
		t.Fatal("Count accessor wrong")
	}
}

func TestTransitionCounterPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Record did not panic")
		}
	}()
	NewTransitionCounter(2).Record(0, 5)
}

func TestTransitionCounterMerge(t *testing.T) {
	a := NewTransitionCounter(2)
	b := NewTransitionCounter(2)
	a.Record(0, 1)
	b.Record(0, 1)
	b.Record(1, 0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count(0, 1) != 2 || a.Count(1, 0) != 1 {
		t.Fatal("merge lost counts")
	}
	if err := a.Merge(NewTransitionCounter(3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: rows of Probs sum to ~1 whenever any jump was recorded from that
// state, and all entries are within [0,1].
func TestQuickTransitionRowsStochastic(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(8)
		c := NewTransitionCounter(n)
		events := 50 + src.Intn(200)
		for e := 0; e < events; e++ {
			c.Record(src.Intn(n), src.Intn(n))
		}
		p := c.Probs()
		for i := 0; i < n; i++ {
			var rowSum float64
			var hasJump bool
			for j := 0; j < n; j++ {
				if p[i][j] < 0 || p[i][j] > 1 {
					return false
				}
				rowSum += p[i][j]
				if i != j && c.Count(i, j) > 0 {
					hasJump = true
				}
			}
			if hasJump && math.Abs(rowSum-1) > 1e-9 {
				return false
			}
			if !hasJump && rowSum != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	if math.Abs(r.Value()-2.0/3.0) > 1e-12 {
		t.Fatalf("ratio = %v", r.Value())
	}
	r.ObserveN(0, 3)
	if math.Abs(r.Value()-2.0/6.0) > 1e-12 {
		t.Fatalf("ratio = %v", r.Value())
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d", r.Total())
	}
}

// Property: Running.Mean matches the naive mean for arbitrary inputs.
func TestQuickRunningMeanMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter out NaN/Inf inputs; the accumulator is not defined for them.
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		var r Running
		for _, x := range clean {
			r.Observe(x)
		}
		naive := Mean(clean)
		if len(clean) == 0 {
			return r.Mean() == 0
		}
		scale := 1.0
		if m := math.Abs(naive); m > 1 {
			scale = m
		}
		return math.Abs(r.Mean()-naive)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
