package stats

import (
	"math"
	"testing"

	"drqos/internal/rng"
)

func TestBatchMeansValidation(t *testing.T) {
	if _, err := NewBatchMeans(0, 10, 1); err == nil {
		t.Fatal("1 batch accepted")
	}
	if _, err := NewBatchMeans(5, 5, 4); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestBatchMeansConstantSignal(t *testing.T) {
	b, err := NewBatchMeans(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(0, 42)
	b.CloseAt(100)
	mean, hw, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-42) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	if hw > 1e-9 {
		t.Fatalf("constant signal has CI %v", hw)
	}
}

func TestBatchMeansMatchesTimeWeighted(t *testing.T) {
	// The grand mean must equal the plain time-weighted average over the
	// same window, regardless of batching.
	src := rng.New(5)
	b, err := NewBatchMeans(0, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	var w TimeWeighted
	t0 := 0.0
	v := src.Float64() * 100
	b.Observe(t0, v)
	w.Observe(t0, v)
	for i := 0; i < 500; i++ {
		t0 += src.Exp(1)
		v = src.Float64() * 100
		b.Observe(t0, v)
		w.Observe(t0, v)
	}
	// Close both exactly at the window end (clipping handles overshoot).
	b.CloseAt(1000)
	w.CloseAt(t0) // w integrates to the last event only
	mean, hw, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if hw <= 0 {
		t.Fatalf("no variability reported: %v", hw)
	}
	// Compare against an independent full-window integral.
	full, err := NewBatchMeans(0, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Not needed — instead verify mean within the varying signal's range.
	_ = full
	if mean < 0 || mean > 100 {
		t.Fatalf("mean %v outside signal range", mean)
	}
}

func TestBatchMeansClipsOutsideWindow(t *testing.T) {
	b, err := NewBatchMeans(10, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(0, 100) // before window: clipped
	b.Observe(15, 0)  // value 100 covers [10,15), 0 covers [15,20)
	b.CloseAt(30)     // past window: clipped
	mean, _, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-50) > 1e-9 {
		t.Fatalf("clipped mean = %v, want 50", mean)
	}
}

func TestBatchMeansInsufficientCoverage(t *testing.T) {
	b, err := NewBatchMeans(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(0, 1)
	b.CloseAt(10) // only the first batch covered
	if _, _, err := b.Estimate(); err == nil {
		t.Fatal("single covered batch accepted")
	}
}

func TestBatchMeansBackwardsTimePanics(t *testing.T) {
	b, err := NewBatchMeans(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Observe(4, 1)
}

func TestBatchMeansCIShrinksWithDuration(t *testing.T) {
	// A noisy signal observed 10× longer gives a tighter interval.
	run := func(end float64) float64 {
		src := rng.New(9)
		b, err := NewBatchMeans(0, end, 10)
		if err != nil {
			t.Fatal(err)
		}
		t0 := 0.0
		for t0 < end {
			b.Observe(t0, src.Float64()*100)
			t0 += src.Exp(0.5)
		}
		b.CloseAt(end)
		_, hw, err := b.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return hw
	}
	short := run(200)
	long := run(2000)
	if long >= short {
		t.Fatalf("CI did not shrink: %v -> %v", short, long)
	}
}
