// Package qos models the paper's elastic Quality-of-Service: the min-max
// range QoS specification (§2.2), the discrete bandwidth levels separated by
// the increment size Δ (§3.2), and the two range-QoS adaptation policies —
// the coefficient (utility-proportional) scheme and the max-utility scheme.
//
// Bandwidth is carried as integral Kb/s. The paper's workloads use
// Bmin = 100 Kb/s, Bmax = 500 Kb/s, Δ ∈ {50, 100} Kb/s on 10 Mb/s links;
// integer arithmetic keeps every conservation invariant exact.
package qos

import (
	"errors"
	"fmt"
)

// Kbps is a bandwidth amount in kilobits per second.
type Kbps int64

// String renders the bandwidth in human units.
func (k Kbps) String() string {
	if k >= 1000 && k%1000 == 0 {
		return fmt.Sprintf("%dMbps", k/1000)
	}
	return fmt.Sprintf("%dKbps", int64(k))
}

// ErrInvalidSpec reports a malformed elastic QoS specification.
var ErrInvalidSpec = errors.New("qos: invalid elastic spec")

// ElasticSpec is the min-max range QoS model (§2.2): the client specifies
// the minimum bandwidth required for acceptable service, the maximum useful
// bandwidth, the adjustment increment, and the utility weight used when
// extra resources are distributed.
type ElasticSpec struct {
	Min       Kbps
	Max       Kbps
	Increment Kbps
	Utility   float64
}

// Validate checks the structural constraints from §3.2: positive minimum
// and increment, Max ≥ Min, and (Max − Min) an integral multiple of the
// increment ("the interval between the minimum and the maximum resources is
// an integral multiple of the increment size").
func (s ElasticSpec) Validate() error {
	switch {
	case s.Min <= 0:
		return fmt.Errorf("%w: Min %v must be positive", ErrInvalidSpec, s.Min)
	case s.Max < s.Min:
		return fmt.Errorf("%w: Max %v below Min %v", ErrInvalidSpec, s.Max, s.Min)
	case s.Increment <= 0:
		return fmt.Errorf("%w: Increment %v must be positive", ErrInvalidSpec, s.Increment)
	case (s.Max-s.Min)%s.Increment != 0:
		return fmt.Errorf("%w: range %v..%v not a multiple of increment %v",
			ErrInvalidSpec, s.Min, s.Max, s.Increment)
	case s.Utility < 0:
		return fmt.Errorf("%w: negative utility %v", ErrInvalidSpec, s.Utility)
	}
	return nil
}

// States returns N, the number of bandwidth levels a channel with this spec
// can occupy: N = 1 + (Max − Min)/Δ (§3.2).
func (s ElasticSpec) States() int {
	return 1 + int((s.Max-s.Min)/s.Increment)
}

// Bandwidth returns the bandwidth of state i (S_i = Bmin + i·Δ). It panics
// on an out-of-range state, which is always a programming error.
func (s ElasticSpec) Bandwidth(state int) Kbps {
	if state < 0 || state >= s.States() {
		panic(fmt.Sprintf("qos: state %d outside [0,%d)", state, s.States()))
	}
	return s.Min + Kbps(state)*s.Increment
}

// StateOf returns the state index for a bandwidth value. The bandwidth must
// be a valid level for the spec.
func (s ElasticSpec) StateOf(bw Kbps) (int, error) {
	if bw < s.Min || bw > s.Max || (bw-s.Min)%s.Increment != 0 {
		return 0, fmt.Errorf("%w: bandwidth %v is not a level of [%v..%v, Δ=%v]",
			ErrInvalidSpec, bw, s.Min, s.Max, s.Increment)
	}
	return int((bw - s.Min) / s.Increment), nil
}

// DefaultSpec returns the paper's workload specification: a DR-connection
// needing 100 Kb/s minimum (a "recognizable" video stream) up to 500 Kb/s
// ("high-quality image") with a 50 Kb/s increment and unit utility (§4:
// "the utilities of all connections are the same for fair distribution").
func DefaultSpec() ElasticSpec {
	return ElasticSpec{Min: 100, Max: 500, Increment: 50, Utility: 1}
}
