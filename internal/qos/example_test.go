package qos_test

import (
	"fmt"

	"drqos/internal/qos"
)

// ExampleElasticSpec shows the paper's default video workload: a stream
// usable at 100 Kb/s and ideal at 500 Kb/s, adapted in 50 Kb/s steps.
func ExampleElasticSpec() {
	spec := qos.DefaultSpec()
	fmt.Println("states:", spec.States())
	fmt.Println("floor:", spec.Bandwidth(0))
	fmt.Println("ceiling:", spec.Bandwidth(spec.States()-1))
	// Output:
	// states: 9
	// floor: 100Kbps
	// ceiling: 500Kbps
}

// ExamplePick shows how the two adaptation policies split one extra
// increment between channels with different utilities.
func ExamplePick() {
	cands := []qos.GrowthCandidate{
		{Utility: 1, ExtraIncrements: 2, Order: 1},
		{Utility: 3, ExtraIncrements: 2, Order: 2},
	}
	fmt.Println("max-utility picks:", qos.Pick(qos.MaxUtilityPolicy{}, cands))
	fmt.Println("coefficient picks:", qos.Pick(qos.CoefficientPolicy{}, cands))
	// Output:
	// max-utility picks: 1
	// coefficient picks: 1
}
