package qos

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDefaultSpecMatchesPaper(t *testing.T) {
	s := DefaultSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Min != 100 || s.Max != 500 || s.Increment != 50 {
		t.Fatalf("spec %+v", s)
	}
	// Δ=50 gives the paper's 9-state chain; Δ=100 gives the 5-state chain.
	if s.States() != 9 {
		t.Fatalf("states = %d, want 9", s.States())
	}
	s.Increment = 100
	if s.States() != 5 {
		t.Fatalf("states = %d, want 5", s.States())
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ElasticSpec
		ok   bool
	}{
		{"valid", ElasticSpec{100, 500, 50, 1}, true},
		{"degenerate point range", ElasticSpec{100, 100, 50, 1}, true},
		{"zero min", ElasticSpec{0, 500, 50, 1}, false},
		{"max below min", ElasticSpec{500, 100, 50, 1}, false},
		{"zero increment", ElasticSpec{100, 500, 0, 1}, false},
		{"non-multiple range", ElasticSpec{100, 510, 50, 1}, false},
		{"negative utility", ElasticSpec{100, 500, 50, -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("accepted")
				}
				if !errors.Is(err, ErrInvalidSpec) {
					t.Fatalf("wrong error type: %v", err)
				}
			}
		})
	}
}

func TestBandwidthStateRoundTrip(t *testing.T) {
	s := DefaultSpec()
	for i := 0; i < s.States(); i++ {
		bw := s.Bandwidth(i)
		j, err := s.StateOf(bw)
		if err != nil {
			t.Fatal(err)
		}
		if j != i {
			t.Fatalf("round trip %d -> %v -> %d", i, bw, j)
		}
	}
	if s.Bandwidth(0) != s.Min || s.Bandwidth(s.States()-1) != s.Max {
		t.Fatal("endpoints wrong")
	}
}

func TestStateOfRejectsOffLevels(t *testing.T) {
	s := DefaultSpec()
	for _, bw := range []Kbps{0, 99, 125, 501, 1000} {
		if _, err := s.StateOf(bw); err == nil {
			t.Fatalf("bandwidth %v accepted", bw)
		}
	}
}

func TestBandwidthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultSpec().Bandwidth(9)
}

func TestKbpsString(t *testing.T) {
	if Kbps(500).String() != "500Kbps" {
		t.Fatalf("got %q", Kbps(500).String())
	}
	if Kbps(10000).String() != "10Mbps" {
		t.Fatalf("got %q", Kbps(10000).String())
	}
	if Kbps(1500).String() != "1500Kbps" {
		t.Fatalf("got %q", Kbps(1500).String())
	}
}

func TestMaxUtilityPolicy(t *testing.T) {
	p := MaxUtilityPolicy{}
	cands := []GrowthCandidate{
		{Utility: 1, ExtraIncrements: 0, Order: 0},
		{Utility: 3, ExtraIncrements: 5, Order: 1},
		{Utility: 2, ExtraIncrements: 0, Order: 2},
	}
	if got := Pick(p, cands); got != 1 {
		t.Fatalf("Next = %d, want the utility-3 candidate", got)
	}
	// Ties by utility: fewer extras wins.
	cands = []GrowthCandidate{
		{Utility: 2, ExtraIncrements: 4, Order: 0},
		{Utility: 2, ExtraIncrements: 1, Order: 1},
	}
	if got := Pick(p, cands); got != 1 {
		t.Fatalf("tie broke wrong: %d", got)
	}
	// Full tie: lower order wins.
	cands = []GrowthCandidate{
		{Utility: 2, ExtraIncrements: 1, Order: 5},
		{Utility: 2, ExtraIncrements: 1, Order: 3},
	}
	if got := Pick(p, cands); got != 1 {
		t.Fatalf("order tiebreak wrong: %d", got)
	}
}

func TestCoefficientPolicyProportional(t *testing.T) {
	p := CoefficientPolicy{}
	// Utilities 1 and 3: after many grants, shares approach 1:3.
	counts := []int{0, 0}
	cands := []GrowthCandidate{
		{Utility: 1, Order: 0},
		{Utility: 3, Order: 1},
	}
	for i := 0; i < 400; i++ {
		cands[0].ExtraIncrements = counts[0]
		cands[1].ExtraIncrements = counts[1]
		counts[Pick(p, cands)]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("shares %v, ratio %v want ~3", counts, ratio)
	}
}

func TestCoefficientPolicyZeroUtilityLast(t *testing.T) {
	p := CoefficientPolicy{}
	cands := []GrowthCandidate{
		{Utility: 0, ExtraIncrements: 0, Order: 0},
		{Utility: 0.1, ExtraIncrements: 100, Order: 1},
	}
	if got := Pick(p, cands); got != 1 {
		t.Fatalf("zero-utility candidate preferred")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"max-utility", "coefficient"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Property: both policies always return a valid index, and for equal
// utilities the coefficient policy equalizes extras (max spread ≤ 1).
func TestQuickPoliciesWellBehaved(t *testing.T) {
	f := func(nRaw uint8, rounds uint8) bool {
		n := int(nRaw%8) + 1
		cands := make([]GrowthCandidate, n)
		for i := range cands {
			cands[i] = GrowthCandidate{Utility: 1, Order: int64(i)}
		}
		coef := CoefficientPolicy{}
		maxu := MaxUtilityPolicy{}
		for r := 0; r < int(rounds); r++ {
			i := Pick(coef, cands)
			if i < 0 || i >= n {
				return false
			}
			cands[i].ExtraIncrements++
			if j := Pick(maxu, cands); j < 0 || j >= n {
				return false
			}
		}
		minE, maxE := cands[0].ExtraIncrements, cands[0].ExtraIncrements
		for _, c := range cands {
			if c.ExtraIncrements < minE {
				minE = c.ExtraIncrements
			}
			if c.ExtraIncrements > maxE {
				maxE = c.ExtraIncrements
			}
		}
		return maxE-minE <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Bandwidth/StateOf are mutual inverses for arbitrary valid specs.
func TestQuickSpecRoundTrip(t *testing.T) {
	f := func(minRaw, stepsRaw, incRaw uint8) bool {
		min := Kbps(minRaw) + 1
		inc := Kbps(incRaw%100) + 1
		steps := Kbps(stepsRaw % 20)
		s := ElasticSpec{Min: min, Max: min + steps*inc, Increment: inc, Utility: 1}
		if s.Validate() != nil {
			return false
		}
		if s.States() != int(steps)+1 {
			return false
		}
		for i := 0; i < s.States(); i++ {
			j, err := s.StateOf(s.Bandwidth(i))
			if err != nil || j != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
