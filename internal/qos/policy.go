package qos

import "fmt"

// GrowthCandidate describes one channel competing for the next bandwidth
// increment during redistribution.
type GrowthCandidate struct {
	// Utility is the channel's utility weight from its ElasticSpec.
	Utility float64
	// ExtraIncrements is the number of Δ-increments the channel currently
	// holds above its minimum.
	ExtraIncrements int
	// Order is a deterministic tiebreaker (typically establishment order).
	Order int64
}

// Policy defines a strict priority order over growth candidates: when extra
// resources are distributed (§2.2), the candidate that Less ranks first
// receives the next increment. Implementations must be deterministic; ties
// are broken by Order so that no two distinct candidates compare equal.
type Policy interface {
	// Less reports whether a should receive an increment before b.
	Less(a, b GrowthCandidate) bool
	Name() string
}

// Pick returns the index of the candidate the policy serves first. It
// panics on an empty slice: callers decide termination before picking.
func Pick(p Policy, cands []GrowthCandidate) int {
	if len(cands) == 0 {
		panic("qos: Pick on empty candidate list")
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if p.Less(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

// MaxUtilityPolicy implements Han's max-utility scheme [11]: every spare
// increment goes to the candidate with the highest utility, which maximizes
// total reward but "allows a real-time channel to monopolize all the extra
// resources even when its utility is slightly higher than the others".
type MaxUtilityPolicy struct{}

// Name implements Policy.
func (MaxUtilityPolicy) Name() string { return "max-utility" }

// Less implements Policy: highest utility first; ties go to fewer extras,
// then lower order, keeping the outcome deterministic.
func (MaxUtilityPolicy) Less(a, b GrowthCandidate) bool {
	if a.Utility != b.Utility {
		return a.Utility > b.Utility
	}
	if a.ExtraIncrements != b.ExtraIncrements {
		return a.ExtraIncrements < b.ExtraIncrements
	}
	return a.Order < b.Order
}

// CoefficientPolicy implements the coefficient scheme [5]: extra resources
// are allocated proportionally to each channel's utility coefficient. The
// proportional share is realized greedily: each increment goes to the
// candidate whose (extras+1)/utility ratio is smallest, i.e. the channel
// furthest below its proportional entitlement.
type CoefficientPolicy struct{}

// Name implements Policy.
func (CoefficientPolicy) Name() string { return "coefficient" }

// Less implements Policy.
func (CoefficientPolicy) Less(a, b GrowthCandidate) bool {
	ka, kb := propKey(a), propKey(b)
	if ka != kb {
		return ka < kb
	}
	return a.Order < b.Order
}

// propKey is the normalized post-grant allocation; smaller means more
// underserved relative to utility. Zero-utility channels sort last.
func propKey(c GrowthCandidate) float64 {
	if c.Utility <= 0 {
		return 1e300
	}
	return float64(c.ExtraIncrements+1) / c.Utility
}

// PolicyByName returns the named policy ("max-utility" or "coefficient").
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "max-utility":
		return MaxUtilityPolicy{}, nil
	case "coefficient":
		return CoefficientPolicy{}, nil
	default:
		return nil, fmt.Errorf("qos: unknown policy %q", name)
	}
}
