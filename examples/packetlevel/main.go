// Packetlevel: connect the two phases of a real-time channel (§2.1.1) —
// off-line establishment (what this repository's manager does with elastic
// bandwidth) and run-time message scheduling (what each link does with the
// reserved bandwidth).
//
// We load a network with elastic DR-connections, pick the busiest directed
// link, convert every channel's CURRENT elastic grant into a (σ,ρ) flow
// with a 50 ms local delay bound, run the EDF admission test, and then
// hammer the link with each flow's worst-case packet trace to confirm that
// zero deadlines are missed. The point: the Kb/s the elastic manager hands
// out are not abstract tokens — they are exactly the currency the link
// scheduler needs to give hard per-packet guarantees.
//
// Run with: go run ./examples/packetlevel
package main

import (
	"fmt"
	"log"

	"drqos/internal/core"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/sched"
	"drqos/internal/topology"
)

func main() {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: core.PaperAlpha, Beta: core.PaperBeta, EnsureConnected: true,
	}, rng.New(21))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := manager.New(g, manager.Config{
		Capacity:      core.PaperCapacity,
		RequireBackup: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	src := rng.New(22)
	for i := 0; i < 2500; i++ {
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes() - 1))
		if b >= a {
			b++
		}
		_, _ = mgr.Establish(a, b, qos.DefaultSpec())
	}
	fmt.Printf("loaded: %d DR-connections, network-wide avg %.0f Kbps\n",
		mgr.AliveCount(), mgr.AverageBandwidth())

	// Find the busiest directed link.
	var busiest topology.DirLinkID
	var bestSum qos.Kbps
	for d := 0; d < g.NumDirLinks(); d++ {
		if s := mgr.Network().GrantSum(topology.DirLinkID(d)); s > bestSum {
			bestSum, busiest = s, topology.DirLinkID(d)
		}
	}
	ids := mgr.Network().PrimariesOn(busiest)
	fmt.Printf("busiest directed link %d: %v reserved across %d channels\n",
		busiest, bestSum, len(ids))

	// Convert each channel's current grant into a packet-level flow:
	// 12 Kb max packets (≈1500 B) and a two-packet burst allowance. The
	// link then computes the TIGHTEST common local delay bound it can
	// promise at its current (fully booked) load — this is the §2
	// transformation between bandwidth and delay forms of performance QoS.
	const maxPacket = 12.0
	mkFlows := func(deadline float64) []sched.FlowSpec {
		flows := make([]sched.FlowSpec, 0, len(ids))
		for _, id := range ids {
			c := mgr.Conn(id)
			flows = append(flows, sched.FlowSpec{
				Burst:     2 * maxPacket,
				Rate:      float64(c.Bandwidth()),
				MaxPacket: maxPacket,
				Deadline:  deadline,
			})
		}
		return flows
	}
	lo, hi := 0.001, 1.0
	if err := sched.CanAdmit(mkFlows(hi), float64(core.PaperCapacity)); err != nil {
		log.Fatalf("even a 1s bound is infeasible: %v", err)
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if sched.CanAdmit(mkFlows(mid), float64(core.PaperCapacity)) == nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	deadline := hi
	flows := mkFlows(deadline)
	fmt.Printf("EDF admission: %d flows totalling %v fit a %v link with a %.1f ms local bound\n",
		len(flows), bestSum, core.PaperCapacity, deadline*1000)

	trace, err := sched.GreedyTrace(flows, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.Simulate(trace, float64(core.PaperCapacity), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case packet simulation: %d packets, %d deadline misses, "+
		"max lateness %.3f ms, utilization %.1f%%\n",
		res.Packets, res.Misses, res.MaxLateness*1000, 100*res.Utilization)
	if res.Misses == 0 {
		fmt.Println("every reserved Kb/s translated into met per-packet deadlines —")
		fmt.Println("the elastic grants compose into hard run-time guarantees.")
	}
}
