// Serverclient: the admission service end to end, in one process.
//
// Starts the internal/server actor loop over a paper-matched topology,
// mounts its HTTP API on an httptest listener, admits a handful of elastic
// DR-connections over real HTTP, injects a link failure under one of them,
// and prints the /v1/stats snapshot before and after.
//
// Run with: go run ./examples/serverclient
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"drqos/internal/core"
	"drqos/internal/manager"
	"drqos/internal/server"
)

func main() {
	sys, err := core.NewSystem(core.Options{Seed: 42, Nodes: 60})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(sys.Graph(), manager.Config{Capacity: core.PaperCapacity}, server.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	ts := httptest.NewServer(server.NewHandler(srv))
	defer ts.Close()
	fmt.Printf("daemon on %s over %d nodes / %d links\n\n",
		ts.URL, sys.Graph().NumNodes(), sys.Graph().NumLinks())

	// Admit a few elastic connections (the paper's 100..500 Kb/s spec).
	var admitted []server.EstablishResponse
	for _, pair := range [][2]int{{0, 30}, {5, 42}, {12, 55}, {3, 27}, {48, 9}} {
		var resp server.EstablishResponse
		status := post(ts.URL+"/v1/connections",
			server.EstablishRequest{Src: pair[0], Dst: pair[1]}, &resp)
		if status != http.StatusCreated {
			fmt.Printf("  %d→%d rejected (status %d)\n", pair[0], pair[1], status)
			continue
		}
		admitted = append(admitted, resp)
		fmt.Printf("  conn %d: %d→%d at level %d (%d Kbps), backup=%v, %d hops\n",
			resp.ID, pair[0], pair[1], resp.Level, resp.BandwidthKbps, resp.HasBackup, resp.PrimaryHops)
	}

	fmt.Println("\nstats before failure:")
	printStats(ts.URL)

	// Fail a link under the first admitted connection's primary: find one
	// by failing links until the failure report names it. For the demo we
	// simply fail link 0 and show the report.
	var fr server.FaultResponse
	post(ts.URL+"/v1/faults/link", server.FaultRequest{Link: 0}, &fr)
	fmt.Printf("\nfailed link 0: activated=%v dropped=%v backups_lost=%v squeezed=%d\n",
		fr.Activated, fr.Dropped, fr.BackupsLost, fr.Squeezed)

	fmt.Println("\nstats after failure:")
	printStats(ts.URL)
}

func post(url string, body, out any) int {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
	return resp.StatusCode
}

func printStats(base string) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  alive=%d unprotected=%d avg_bw=%.1fKbps rejects=%d/%d levels=%v failed_links=%v\n",
		st.Alive, st.Unprotected, st.AvgBandwidthKbps, st.Rejects, st.Requests,
		st.LevelHistogram, st.FailedLinks)
}
