// Videostream: the paper's motivating workload (§4) driven through the
// manager API directly.
//
// "For example, a video service requires at least 100Kbps for recognizable
// continuous images and 500Kbps for a high-quality image."
//
// A video provider sets up streams between random customer sites. Each
// stream asks for the elastic range [100, 500] Kb/s; premium streams carry
// double utility. As the network fills up, every stream keeps running — the
// elastic QoS degrades picture quality instead of rejecting new customers —
// and premium streams keep a visibly better picture under the coefficient
// (proportional) adaptation policy.
//
// Run with: go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	"drqos/internal/channel"
	"drqos/internal/core"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// quality maps a reserved bandwidth to the paper's informal video scale.
func quality(bw qos.Kbps) string {
	switch {
	case bw >= 500:
		return "high-quality"
	case bw >= 300:
		return "good"
	case bw >= 200:
		return "fair"
	default:
		return "recognizable"
	}
}

func main() {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: core.PaperAlpha, Beta: core.PaperBeta, EnsureConnected: true,
	}, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := manager.New(g, manager.Config{
		Capacity:      core.PaperCapacity,
		Policy:        qos.CoefficientPolicy{},
		RequireBackup: true, // every stream gets a backup channel
	})
	if err != nil {
		log.Fatal(err)
	}

	standard := qos.DefaultSpec() // 100..500 Kbps, utility 1
	premium := qos.DefaultSpec()
	premium.Utility = 2

	src := rng.New(99)
	var premiumIDs, standardIDs []channel.ConnID
	const streams = 2500
	for i := 0; i < streams; i++ {
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes() - 1))
		if b >= a {
			b++
		}
		spec := standard
		if i%10 == 0 { // every tenth customer pays for premium
			spec = premium
		}
		rep, err := mgr.Establish(a, b, spec)
		if err != nil {
			continue // rejected: no route with 100 Kb/s + protection left
		}
		if spec.Utility > 1 {
			premiumIDs = append(premiumIDs, rep.Conn.ID)
		} else {
			standardIDs = append(standardIDs, rep.Conn.ID)
		}

		if (i+1)%500 == 0 {
			fmt.Printf("after %4d requests: %4d streams up, network-wide avg %.0f Kbps\n",
				i+1, mgr.AliveCount(), mgr.AverageBandwidth())
		}
	}

	avgOf := func(ids []channel.ConnID) (float64, map[string]int) {
		var sum float64
		var n int
		dist := map[string]int{}
		for _, id := range ids {
			c := mgr.Conn(id)
			if c == nil || !c.Alive() {
				continue
			}
			sum += float64(c.Bandwidth())
			dist[quality(c.Bandwidth())]++
			n++
		}
		if n == 0 {
			return 0, dist
		}
		return sum / float64(n), dist
	}

	fmt.Println()
	pAvg, pDist := avgOf(premiumIDs)
	sAvg, sDist := avgOf(standardIDs)
	fmt.Printf("premium streams:  avg %.0f Kbps, quality mix %v\n", pAvg, pDist)
	fmt.Printf("standard streams: avg %.0f Kbps, quality mix %v\n", sAvg, sDist)
	fmt.Printf("acceptance: %d/%d requests admitted (every admitted stream is backed up)\n",
		mgr.Requests()-mgr.Rejects(), mgr.Requests())
	unprotected := mgr.Unprotected()
	fmt.Printf("unprotected streams: %d\n", len(unprotected))
}
