// Quickstart: reproduce one data point of the paper in ~20 lines.
//
// Builds a paper-matched 100-node Waxman network, loads it with 2000
// dependable real-time connections with elastic QoS (100..500 Kb/s, Δ=50),
// runs the measured churn phase, and compares the simulated average
// reserved bandwidth with the Markov-chain estimate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"drqos/internal/core"
)

func main() {
	sys, err := core.NewSystem(core.Options{
		Seed:         42,
		InitialConns: 2000,
		ChurnEvents:  1000,
		WarmupEvents: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := sys.Metrics()
	fmt.Printf("network: %d nodes, %d links, diameter %d\n", m.Nodes, m.Edges, m.Diameter)

	ev, err := sys.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alive DR-connections:   %d (of %d offered)\n", ev.Sim.AliveAtEnd, ev.Sim.Offered)
	fmt.Printf("simulated avg bandwidth: %.1f Kbps\n", ev.Sim.AvgBandwidth)
	fmt.Printf("Markov-chain estimate:   %.1f Kbps (paper model)\n", ev.PaperModel.MeanBandwidth)
	fmt.Printf("                         %.1f Kbps (finite-lifetime refinement)\n", ev.RestartModel.MeanBandwidth)
	fmt.Printf("measured Pf=%.4f Ps=%.4f\n", ev.Sim.Params.Pf, ev.Sim.Params.Ps)
}
