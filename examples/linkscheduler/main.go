// Linkscheduler: the paper's SECOND elastic-QoS model in action (§2.2) —
// interval QoS, where "the link manager can selectively ignore a packet as
// long as it can satisfy the minimum k-out-of-M requirement".
//
// A congested link carries 12 periodic media streams but only has room for
// 9 packets per tick. Each stream tolerates some loss: a surveillance
// camera is happy with 1 frame out of every 3, video-conference streams
// need 3-of-4, and a haptic control loop needs every packet (4-of-4 with no
// slack, i.e. mandatory). The distance-based-priority scheduler skips only
// streams that can afford it and keeps every contract intact.
//
// Run with: go run ./examples/linkscheduler
package main

import (
	"fmt"
	"log"

	"drqos/internal/intervalqos"
)

func main() {
	const capacity = 9
	sched, err := intervalqos.NewScheduler(capacity)
	if err != nil {
		log.Fatal(err)
	}

	type class struct {
		name  string
		spec  intervalqos.Spec
		count int
	}
	classes := []class{
		{"haptic-control (every packet)", intervalqos.Spec{K: 4, M: 4}, 2},
		{"video-conference (3-of-4)", intervalqos.Spec{K: 3, M: 4}, 6},
		{"surveillance (1-of-3)", intervalqos.Spec{K: 1, M: 3}, 4},
	}
	labels := make([]string, 0, 12)
	for _, c := range classes {
		for i := 0; i < c.count; i++ {
			s, err := intervalqos.NewStream(c.spec)
			if err != nil {
				log.Fatal(err)
			}
			sched.Add(s)
			labels = append(labels, c.name)
		}
	}
	offered := len(labels)
	fmt.Printf("link capacity: %d packets/tick, offered: %d streams (overbooked %.0f%%)\n\n",
		capacity, offered, 100*float64(offered-capacity)/float64(capacity))

	const ticks = 10000
	overloads := 0
	for t := 0; t < ticks; t++ {
		if sched.Tick().Overload {
			overloads++
		}
	}

	fmt.Printf("%-32s %10s %8s %10s\n", "stream", "delivered", "skipped", "violations")
	for i, s := range sched.Streams() {
		d, sk, v := s.Counts()
		fmt.Printf("%-32s %10d %8d %10d\n", labels[i], d, sk, v)
	}
	fmt.Printf("\nticks: %d, mandatory overloads: %d, total contract violations: %d\n",
		ticks, overloads, sched.Violations())
	if sched.Violations() == 0 {
		fmt.Println("every k-out-of-M contract held despite 33% overbooking —")
		fmt.Println("this is the run-time face of elastic QoS.")
	}
}
