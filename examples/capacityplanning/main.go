// Capacityplanning: use the analytic model the way the paper intends —
// "the performance evaluation of dependable real-time communication is
// essential for ... the future planning of the network" (§1).
//
// A provider wants to know how many DR-connections the network can carry
// while keeping the average video quality at "good" (≥ 300 Kb/s). Running
// the full simulator for every candidate load is expensive; instead we
// calibrate the Markov model once at a moderate load, then reuse the
// simulator only to verify the analytically-chosen operating point.
//
// Run with: go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"drqos/internal/core"
)

const targetKbps = 300.0

func evaluate(load int) (*core.Evaluation, error) {
	sys, err := core.NewSystem(core.Options{
		Seed:         2026,
		InitialConns: load,
		ChurnEvents:  800,
		WarmupEvents: 200,
	})
	if err != nil {
		return nil, err
	}
	return sys.Evaluate()
}

func main() {
	fmt.Printf("planning target: average reserved bandwidth >= %.0f Kbps\n\n", targetKbps)
	fmt.Println("load  sim(Kbps)  markov(Kbps)  meets target?")

	// Sweep candidate loads; in a real deployment the sim column would be
	// replaced by measurements, and only the model would be re-solved.
	best := 0
	for _, load := range []int{1000, 1500, 2000, 2500, 3000, 3500} {
		ev, err := evaluate(load)
		if err != nil {
			log.Fatal(err)
		}
		model := ev.RestartModel.MeanBandwidth
		ok := model >= targetKbps
		mark := "no"
		if ok {
			mark = "yes"
			best = load
		}
		fmt.Printf("%4d  %9.1f  %12.1f  %s\n", load, ev.Sim.AvgBandwidth, model, mark)
	}
	if best == 0 {
		fmt.Println("\nno candidate load meets the target")
		return
	}
	fmt.Printf("\nchosen operating point: %d offered DR-connections\n", best)

	ev, err := evaluate(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification run at %d: simulated average %.1f Kbps (model said %.1f)\n",
		best, ev.Sim.AvgBandwidth, ev.RestartModel.MeanBandwidth)
	if ev.Sim.AvgBandwidth >= targetKbps*0.95 {
		fmt.Println("operating point verified: quality target holds in detailed simulation")
	} else {
		fmt.Println("WARNING: model was optimistic at this load; plan with a margin")
	}
}
