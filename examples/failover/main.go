// Failover: walk through the paper's fault-tolerance machinery (§2.1.2,
// §3.1) on a small network you can trace by hand.
//
// The scenario follows a remote-surgery connection (the paper's motivating
// "remote medical services"): a primary channel carries the video feed, a
// link-disjoint backup stands by. A backhoe cuts a fiber on the primary
// route; the backup activates within the same control action, neighbouring
// channels retreat to their minimum QoS to make room, and once the fiber is
// repaired the connection is re-protected.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"drqos/internal/core"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

func main() {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 50, Alpha: 0.5, Beta: 0.15, EnsureConnected: true,
	}, rng.New(12))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := manager.New(g, manager.Config{
		Capacity:      core.PaperCapacity,
		RequireBackup: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Background load so that failure effects are visible.
	src := rng.New(34)
	for i := 0; i < 800; i++ {
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes() - 1))
		if b >= a {
			b++
		}
		_, _ = mgr.Establish(a, b, qos.DefaultSpec())
	}
	fmt.Printf("background: %d channels up, avg %.0f Kbps\n\n", mgr.AliveCount(), mgr.AverageBandwidth())

	// The surgery feed.
	rep, err := mgr.Establish(0, topology.NodeID(g.NumNodes()-1), qos.DefaultSpec())
	if err != nil {
		log.Fatalf("could not establish the surgery feed: %v", err)
	}
	feed := rep.Conn
	fmt.Printf("surgery feed %d established:\n", feed.ID)
	fmt.Printf("  primary: %v  (%v)\n", feed.Primary, feed.Bandwidth())
	fmt.Printf("  backup:  %v  (link-disjoint: %v)\n\n", feed.Backup, feed.Backup.LinkDisjoint(feed.Primary))

	// The backhoe moment: cut a fiber in the middle of the primary route.
	cut := feed.Primary.Links[len(feed.Primary.Links)/2]
	fmt.Printf("cutting link %d (on the primary route)...\n", cut)
	fr, err := mgr.FailLink(cut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  activated backups: %d, dropped: %d, channels squeezed to minimum: %d\n",
		len(fr.Activated), len(fr.Dropped), len(fr.Squeezed))
	fmt.Printf("  feed state: %v, now running on %v at %v\n",
		feed.State(), feed.Primary, feed.Bandwidth())
	if feed.HasBackup {
		fmt.Printf("  feed was immediately re-protected via %v\n", feed.Backup)
	} else {
		fmt.Println("  feed is temporarily unprotected (no disjoint route while the fiber is down)")
	}

	// Repair restores protection for whoever lost it.
	fmt.Printf("\nrepairing link %d...\n", cut)
	restored, err := mgr.RepairLink(cut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  backups re-established for %d channels\n", restored)
	fmt.Printf("  feed protected again: %v\n", feed.HasBackup)
	fmt.Printf("\nnetwork after the incident: %d channels, avg %.0f Kbps, %d unprotected\n",
		mgr.AliveCount(), mgr.AverageBandwidth(), len(mgr.Unprotected()))

	if err := mgr.CheckInvariants(); err != nil {
		log.Fatalf("ledger corrupted: %v", err)
	}
	fmt.Println("resource ledger verified: all conservation invariants hold")
}
