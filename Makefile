.PHONY: check build test race bench bench-json bench-smoke loadtest overload-smoke forecast-smoke shard-smoke failover-smoke partition-smoke

# Full tier-1 verification: build + vet + race-enabled tests.
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Hot-path baselines for the admission service (see internal/manager) and
# the paper-reproduction benchmarks at the repo root.
bench:
	go test -run xxx -bench 'BenchmarkManager' -benchmem ./internal/manager/
	go test -run xxx -bench 'BenchmarkP2' -benchmem ./internal/stats/

# Record the full suite into BENCH_<date>.json / run the CI smoke pass.
# Compare two recordings with: scripts/bench.sh --compare old.json new.json
bench-json:
	./scripts/bench.sh

bench-smoke:
	./scripts/bench.sh --quick

# Overload control plane: in-process episodes under -race, then a live 4x
# over-capacity burst drill against a real drserverd.
overload-smoke:
	./scripts/check.sh --overload

# Live analytic control plane: forecast unit tests under -race, then a
# closed-loop drload run that gates the online Markov model's predicted
# mean bandwidth within 10% of the measurement.
forecast-smoke:
	./scripts/check.sh --forecast

# Sharded admission plane: partition/2PC tests under -race, mid-2PC kill
# episodes, then a live drserverd -shards 4 kill -9 recovery smoke.
shard-smoke:
	./scripts/check.sh --shard

# Primary/backup replication: replica tests under -race, seeded
# primary-kill episodes, then a live two-node pair with a kill -9
# mid-burst, sub-second promotion and a fenced bit-identical rejoin.
failover-smoke:
	./scripts/check.sh --failover

# Partition tolerance: netchaos fault injection, lease-fenced replication
# and timeout-hardened 2PC under -race, then a live pair with the manual
# promote interlock and a drload ledger run gated on zero acked loss.
partition-smoke:
	./scripts/check.sh --partition

# End-to-end load test: drserverd + drload (10k requests, 8 workers).
loadtest:
	go build -o /tmp/drserverd ./cmd/drserverd
	go build -o /tmp/drload ./cmd/drload
	/tmp/drserverd -addr 127.0.0.1:18080 & \
	pid=$$!; sleep 2; \
	/tmp/drload -addr http://127.0.0.1:18080 -workers 8 -requests 10000; rc=$$?; \
	kill -TERM $$pid; wait $$pid; exit $$rc
