#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record the numbers
# as BENCH_<date>.json, or compare two such recordings.
#
#   scripts/bench.sh                  full run -> BENCH_$(date +%F).json
#   scripts/bench.sh --quick          1-iteration smoke run (CI), report to stdout only
#   scripts/bench.sh --force          overwrite an existing BENCH_<date>.json
#   scripts/bench.sh --compare A B    diff two BENCH json files; exit 1 on
#                                     any ns/op, B/op or allocs/op >10% worse
#   scripts/bench.sh --no-probe       skip the end-to-end drserverd/drload
#                                     RPS probe (and quick's journal rerun)
#
# Besides the go-test microbenchmarks, a run boots a journaled drserverd with
# fsync-per-mutation group commit and drives it with drload -bench-json, so
# the recorded report also carries an end-to-end RPS + latency record
# (drqos/cmd/drload.BenchmarkDrloadEndToEnd). Quick mode reruns the two
# journal append benchmarks at -benchtime 64x first — group commit needs
# enough parallel iterations to actually form batches, which 1x cannot show.
#
# Extra arguments after -- are passed to `go test`, in any combination with
# the flags above, e.g.:
#
#   scripts/bench.sh -- -bench 'BoundedFlood|Establish'
#   scripts/bench.sh --quick -- -bench BoundedFlood
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
force=0
probe=1
extra=()
while [[ $# -gt 0 ]]; do
    case "$1" in
    --compare)
        shift
        [[ $# -eq 2 ]] || { echo "usage: scripts/bench.sh --compare old.json new.json" >&2; exit 2; }
        exec go run ./cmd/benchjson -compare "$1" "$2"
        ;;
    --quick)
        quick=1
        shift
        ;;
    --force)
        force=1
        shift
        ;;
    --no-probe)
        probe=0
        shift
        ;;
    --)
        shift
        extra=("$@")
        break
        ;;
    *)
        echo "bench.sh: unknown argument '$1' (go test args go after --)" >&2
        exit 2
        ;;
    esac
done

benchtime=()
out="BENCH_$(date +%F).json"
if [[ $quick -eq 1 ]]; then
    benchtime=(-benchtime 1x)
    out=""
fi

# A recorded baseline is a measurement artifact: silently clobbering
# today's file with a run under different machine load invalidates any
# comparison already made against it. Demand an explicit --force.
if [[ -n "$out" && -e "$out" && $force -eq 0 ]]; then
    echo "bench.sh: $out already exists; re-run with --force to overwrite" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# -run '^$' skips the unit tests so only benchmarks execute; count=1
# defeats test caching so every run measures. The ${extra[@]+...} guard
# keeps `set -u` happy on bash < 4.4 when no pass-through args were given.
go test -run '^$' -bench . -benchmem -count 1 \
    ${benchtime[@]+"${benchtime[@]}"} ${extra[@]+"${extra[@]}"} ./... | tee "$raw"

if [[ -n "$out" ]]; then
    go run ./cmd/benchjson -host "$(uname -sm)" < "$raw" > "$out"
    echo "wrote $out"
else
    # Quick mode still exercises the parser so CI catches format drift.
    go run ./cmd/benchjson < "$raw" > /dev/null
    echo "quick bench parsed ok"
fi

if [[ $quick -eq 1 && $probe -eq 1 ]]; then
    # 1x iterations cannot form a group-commit batch; rerun the journal
    # append pair with enough parallel iterations that the appends/fsync
    # amortization (and the single-fsync baseline it beats) is visible.
    echo "== journal append benchmarks (group-commit batching)"
    go test -run '^$' -bench 'BenchmarkJournalAppend' -benchmem \
        -benchtime 64x -count 1 ./internal/journal/
fi

if [[ $probe -eq 1 ]]; then
    # End-to-end probe: a journaled drserverd with fsync-per-mutation group
    # commit, driven closed-loop by drload; the run's RPS + latency record is
    # merged into the report (or a throwaway file in quick mode).
    echo "== end-to-end RPS probe (drserverd fsync=1 group commit + drload)"
    tmp="$(mktemp -d)"
    srv_pid=""
    probe_cleanup() {
        [[ -n "$srv_pid" ]] && kill -9 "$srv_pid" 2>/dev/null || true
        rm -rf "$tmp" "$raw"
    }
    trap probe_cleanup EXIT
    go build -o "$tmp/drserverd" ./cmd/drserverd
    go build -o "$tmp/drload" ./cmd/drload
    addr=127.0.0.1:18097
    "$tmp/drserverd" -addr "$addr" -nodes 40 -seed 7 \
        -data-dir "$tmp/data" -fsync 1 >"$tmp/server.log" 2>&1 &
    srv_pid=$!
    for _ in $(seq 1 100); do
        curl -fsS "http://$addr/readyz" >/dev/null 2>&1 && break
        sleep 0.1
    done
    curl -fsS "http://$addr/readyz" >/dev/null 2>&1 || {
        echo "bench.sh: drserverd did not come up; log:" >&2
        cat "$tmp/server.log" >&2
        exit 1
    }
    requests=20000
    probe_out="$out"
    if [[ $quick -eq 1 ]]; then
        requests=3000
        probe_out="$tmp/probe.json"
    fi
    "$tmp/drload" -addr "http://$addr" -workers 8 -requests "$requests" \
        -seed 9 -bench-json "$probe_out"
    kill -TERM "$srv_pid" 2>/dev/null || true
    wait "$srv_pid" 2>/dev/null || true
    srv_pid=""

    # Shard scaling probe: the same intra-heavy closed-loop workload against
    # the classic single-plane daemon and a 4-shard deployment of the same
    # tier topology, recorded as BenchmarkDrloadShard1 / BenchmarkDrloadShard4.
    # -exec-delay models per-command admission work so the serialized actor
    # loop — the thing sharding parallelizes — is the bottleneck, not HTTP.
    echo "== shard scaling probe (-shards 1 vs -shards 4, intra-heavy workload)"
    shard_requests=4000
    if [[ $quick -eq 1 ]]; then
        shard_requests=1200
    fi
    shard_rps() {
        local nshards=$1 port=$2 name=$3
        "$tmp/drserverd" -addr "127.0.0.1:$port" -kind tier -seed 7 \
            -shards "$nshards" -exec-delay 1ms \
            >"$tmp/shard$nshards.log" 2>&1 &
        srv_pid=$!
        for _ in $(seq 1 100); do
            curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1 && break
            sleep 0.1
        done
        curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1 || {
            echo "bench.sh: drserverd -shards $nshards did not come up; log:" >&2
            cat "$tmp/shard$nshards.log" >&2
            exit 1
        }
        # -cross-frac 0.02 keeps the 4-shard run intra-heavy (the 1-shard
        # daemon has no /v1/shards, so drload falls back to uniform pairs).
        "$tmp/drload" -addr "http://127.0.0.1:$port" -workers 8 \
            -requests "$shard_requests" -seed 9 -cross-frac 0.02 \
            -bench-json "$probe_out" -bench-name "$name" \
            >"$tmp/load-shard$nshards.log" 2>&1
        kill -TERM "$srv_pid" 2>/dev/null || true
        wait "$srv_pid" 2>/dev/null || true
        srv_pid=""
        grep -oE '[0-9]+ req/s' "$tmp/load-shard$nshards.log" | head -1 | cut -d' ' -f1
    }
    rps1=$(shard_rps 1 18098 BenchmarkDrloadShard1)
    rps4=$(shard_rps 4 18099 BenchmarkDrloadShard4)
    awk -v a="$rps1" -v b="$rps4" \
        'BEGIN { printf "shard scaling: 1 shard %d req/s, 4 shards %d req/s (%.2fx)\n", a, b, b/a }'

    if [[ $quick -eq 1 ]]; then
        echo "quick probe record:"
        cat "$probe_out"
    fi
fi
