#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record the numbers
# as BENCH_<date>.json, or compare two such recordings.
#
#   scripts/bench.sh                  full run -> BENCH_$(date +%F).json
#   scripts/bench.sh --quick          1-iteration smoke run (CI), report to stdout only
#   scripts/bench.sh --force          overwrite an existing BENCH_<date>.json
#   scripts/bench.sh --compare A B    diff two BENCH json files; exit 1 on
#                                     any ns/op, B/op or allocs/op >10% worse
#
# Extra arguments after -- are passed to `go test`, in any combination with
# the flags above, e.g.:
#
#   scripts/bench.sh -- -bench 'BoundedFlood|Establish'
#   scripts/bench.sh --quick -- -bench BoundedFlood
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
force=0
extra=()
while [[ $# -gt 0 ]]; do
    case "$1" in
    --compare)
        shift
        [[ $# -eq 2 ]] || { echo "usage: scripts/bench.sh --compare old.json new.json" >&2; exit 2; }
        exec go run ./cmd/benchjson -compare "$1" "$2"
        ;;
    --quick)
        quick=1
        shift
        ;;
    --force)
        force=1
        shift
        ;;
    --)
        shift
        extra=("$@")
        break
        ;;
    *)
        echo "bench.sh: unknown argument '$1' (go test args go after --)" >&2
        exit 2
        ;;
    esac
done

benchtime=()
out="BENCH_$(date +%F).json"
if [[ $quick -eq 1 ]]; then
    benchtime=(-benchtime 1x)
    out=""
fi

# A recorded baseline is a measurement artifact: silently clobbering
# today's file with a run under different machine load invalidates any
# comparison already made against it. Demand an explicit --force.
if [[ -n "$out" && -e "$out" && $force -eq 0 ]]; then
    echo "bench.sh: $out already exists; re-run with --force to overwrite" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# -run '^$' skips the unit tests so only benchmarks execute; count=1
# defeats test caching so every run measures. The ${extra[@]+...} guard
# keeps `set -u` happy on bash < 4.4 when no pass-through args were given.
go test -run '^$' -bench . -benchmem -count 1 \
    ${benchtime[@]+"${benchtime[@]}"} ${extra[@]+"${extra[@]}"} ./... | tee "$raw"

if [[ -n "$out" ]]; then
    go run ./cmd/benchjson -host "$(uname -sm)" < "$raw" > "$out"
    echo "wrote $out"
else
    # Quick mode still exercises the parser so CI catches format drift.
    go run ./cmd/benchjson < "$raw" > /dev/null
    echo "quick bench parsed ok"
fi
