#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record the numbers
# as BENCH_<date>.json, or compare two such recordings.
#
#   scripts/bench.sh                  full run -> BENCH_$(date +%F).json
#   scripts/bench.sh --quick          1-iteration smoke run (CI), report to stdout only
#   scripts/bench.sh --compare A B    diff two BENCH json files; exit 1 on
#                                     any ns/op, B/op or allocs/op >10% worse
#
# Extra arguments after -- are passed to `go test`, e.g.:
#
#   scripts/bench.sh -- -bench 'BoundedFlood|Establish'
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--compare" ]]; then
    shift
    [[ $# -eq 2 ]] || { echo "usage: scripts/bench.sh --compare old.json new.json" >&2; exit 2; }
    exec go run ./cmd/benchjson -compare "$1" "$2"
fi

benchtime=()
out="BENCH_$(date +%F).json"
if [[ "${1:-}" == "--quick" ]]; then
    shift
    benchtime=(-benchtime 1x)
    out=""
fi
if [[ "${1:-}" == "--" ]]; then shift; fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# -run '^$' skips the unit tests so only benchmarks execute; count=1
# defeats test caching so every run measures.
go test -run '^$' -bench . -benchmem -count 1 "${benchtime[@]}" "$@" ./... | tee "$raw"

if [[ -n "$out" ]]; then
    go run ./cmd/benchjson -host "$(uname -sm)" < "$raw" > "$out"
    echo "wrote $out"
else
    # Quick mode still exercises the parser so CI catches format drift.
    go run ./cmd/benchjson < "$raw" > /dev/null
    echo "quick bench parsed ok"
fi
