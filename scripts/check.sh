#!/usr/bin/env sh
# Tier-1 verification: build, vet, and run the full test suite with the
# race detector (the internal/server actor loop must stay race-clean).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...
echo "== OK"
