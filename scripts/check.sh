#!/usr/bin/env sh
# Tier-1 verification: build, vet, and run the full test suite with the
# race detector (the internal/server actor loop must stay race-clean).
#
#   scripts/check.sh           build + vet + panic gate + full race tests
#   scripts/check.sh --chaos   build + vet + panic gate + seeded chaos
#                              episodes under -race (manager and server),
#                              plus the fault-injection tests
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...

# The audited event paths must report corruption as a structured
# manager.InvariantViolation the server can catch and degrade on — a bare
# panic() kills the daemon instead. Test files may still panic.
echo "== panic gate (manager / sim / server event paths)"
if grep -n 'panic(' internal/manager/*.go internal/sim/sim.go internal/sim/trace.go internal/server/*.go \
    | grep -v '_test\.go'; then
    echo "FAIL: bare panic() on an audited event path; return a *manager.InvariantViolation instead" >&2
    exit 1
fi

if [ "${1:-}" = "--chaos" ]; then
    # 60 deterministic manager episodes (audit after every event) plus
    # concurrent server episodes with mid-burst shutdowns, all under the
    # race detector, then the fault-injection unit tests.
    echo "== chaos: 60 manager episodes under -race"
    go run -race ./cmd/chaos -episodes 60 -events 120 -seed 1 -q
    echo "== chaos: 6 concurrent server episodes under -race"
    go run -race ./cmd/chaos -server -episodes 6 -workers 6 -ops 80 -q
    echo "== chaos: fault-injection tests"
    go test -race -count 1 -run 'TestShrink|TestRunServer|TestDegraded|TestEpisodes' \
        ./internal/chaos/ ./internal/server/
    echo "== OK (chaos)"
    exit 0
fi

# -timeout is per test binary: internal/experiments runs full quick-scale
# reproductions (plus the worker-determinism replays) and needs more than
# the default 10m under the race detector on small machines.
echo "== go test -race ./..."
go test -race -timeout 45m ./...
echo "== OK"
