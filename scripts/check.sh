#!/usr/bin/env sh
# Tier-1 verification: build, vet, and run the full test suite with the
# race detector (the internal/server actor loop must stay race-clean).
#
#   scripts/check.sh             build + vet + panic gate + full race tests
#   scripts/check.sh --chaos     build + vet + panic gate + seeded chaos
#                                episodes under -race (manager and server),
#                                plus the fault-injection tests
#   scripts/check.sh --recovery  build + panic gate + end-to-end durability
#                                smoke: kill -9 a journaled drserverd
#                                mid-burst, restart from the same data dir,
#                                and require the recovered population to
#                                match the pre-kill metrics exactly
#   scripts/check.sh --overload  build + panic gate + in-process overload
#                                episodes under -race, then a live 4x
#                                over-capacity drload burst against a real
#                                drserverd: non-zero sheds with Retry-After,
#                                bounded read p99, clean return to ready
#   scripts/check.sh --forecast  build + panic gate + forecast unit tests
#                                under -race, then a live forecasting
#                                drserverd driven by a steady closed-loop
#                                drload run: the online Markov model must
#                                land within 10% of the measured mean
#                                bandwidth, and /v1/forecast + what-if must
#                                answer throughout
#   scripts/check.sh --shard     build + panic gate + sharded-plane tests
#                                under -race and mid-2PC kill episodes, then
#                                a live drserverd -shards 4 driven with
#                                cross-shard traffic, kill -9'd and
#                                restarted: the replayed per-shard state
#                                must match the pre-kill metrics exactly and
#                                the plane must admit again (intra + cross)
#   scripts/check.sh --failover  build + panic gate + replication tests
#                                under -race and primary-kill episodes, then
#                                a live two-node pair: kill -9 the primary
#                                mid-burst, gate the standby's promotion
#                                under one second, require the load to
#                                survive by rotating endpoints, and require
#                                the rejoined ex-primary to converge to a
#                                bit-identical state fingerprint
#   scripts/check.sh --partition build + panic gate + netchaos/lease/2PC
#                                partition tests under -race, 20 seeded
#                                partition episodes, then a live leased
#                                pair: promote interlock probed over HTTP,
#                                a drload acked-mutation ledger run, kill
#                                -9 + manual promote, and a second ledger
#                                run gated on acked_lost=0
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...

# The audited event paths must report corruption as a structured
# manager.InvariantViolation the server can catch and degrade on — a bare
# panic() kills the daemon instead. Test files may still panic.
echo "== panic gate (manager / sim / server event paths)"
if grep -n 'panic(' internal/manager/*.go internal/sim/sim.go internal/sim/trace.go internal/server/*.go \
    | grep -v '_test\.go'; then
    echo "FAIL: bare panic() on an audited event path; return a *manager.InvariantViolation instead" >&2
    exit 1
fi

if [ "${1:-}" = "--chaos" ]; then
    # 60 deterministic manager episodes (audit after every event) plus
    # concurrent server episodes with mid-burst shutdowns, all under the
    # race detector, then the fault-injection unit tests.
    echo "== chaos: 60 manager episodes under -race"
    go run -race ./cmd/chaos -episodes 60 -events 120 -seed 1 -q
    echo "== chaos: 6 concurrent server episodes under -race"
    go run -race ./cmd/chaos -server -episodes 6 -workers 6 -ops 80 -q
    echo "== chaos: fault-injection tests"
    go test -race -count 1 -run 'TestShrink|TestRunServer|TestDegraded|TestEpisodes' \
        ./internal/chaos/ ./internal/server/
    echo "== OK (chaos)"
    exit 0
fi

if [ "${1:-}" = "--recovery" ]; then
    # Library-level crash matrix first: journaled episodes killed at varying
    # points, restarted, and compared bit-for-bit against a never-crashed
    # reference.
    echo "== chaos: 8 crash-restart episodes"
    go run ./cmd/chaos -crash -episodes 8 -events 120 -q

    # End-to-end: a real drserverd process, kill -9, restart from disk.
    TMP="$(mktemp -d)"
    SRV_PID=""
    cleanup() {
        [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
        rm -rf "$TMP"
    }
    trap cleanup EXIT
    ADDR=127.0.0.1:18080
    echo "== building drserverd + drload"
    go build -o "$TMP/drserverd" ./cmd/drserverd
    go build -o "$TMP/drload" ./cmd/drload

    start_server() {
        "$TMP/drserverd" -addr "$ADDR" -nodes 40 -seed 7 \
            -data-dir "$TMP/data" -fsync -1 -snapshot-every 50 \
            >>"$TMP/server.log" 2>&1 &
        SRV_PID=$!
        i=0
        while ! curl -fsS "http://$ADDR/v1/stats" >/dev/null 2>&1; do
            i=$((i + 1))
            if [ "$i" -ge 100 ]; then
                echo "FAIL: drserverd did not come up; log:" >&2
                cat "$TMP/server.log" >&2
                exit 1
            fi
            sleep 0.1
        done
    }

    # The deterministic slice of /metrics: population, level histogram,
    # journal position, admission counters. Equal captures mean equal state.
    state_metrics() {
        curl -fsS "http://$ADDR/metrics" | grep -E \
            '^drqos_(connections_alive|connections_level|connections_unprotected|journal_seq|establish_requests_total|establish_rejects_total|links_failed)'
    }

    echo "== recovery smoke 1: quiescent kill -9, restart, exact state match"
    start_server
    "$TMP/drload" -addr "http://$ADDR" -workers 4 -requests 400 -seed 11 \
        -terminate-frac 0.1 >"$TMP/load1.log" 2>&1
    state_metrics >"$TMP/pre.metrics"
    if ! grep -Eq '^drqos_connections_alive [1-9]' "$TMP/pre.metrics"; then
        echo "FAIL: burst left no alive connections; nothing meaningful to recover" >&2
        cat "$TMP/pre.metrics" >&2
        exit 1
    fi
    kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    start_server
    state_metrics >"$TMP/post.metrics"
    if ! diff -u "$TMP/pre.metrics" "$TMP/post.metrics"; then
        echo "FAIL: state after kill -9 + restart differs from the journaled state" >&2
        exit 1
    fi

    echo "== recovery smoke 2: kill -9 mid-burst, restart, audit"
    "$TMP/drload" -addr "http://$ADDR" -workers 4 -requests 100000 -seed 12 \
        -retries 1 -retry-base 10ms >"$TMP/load2.log" 2>&1 &
    LOAD_PID=$!
    sleep 1
    kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    kill "$LOAD_PID" 2>/dev/null || true
    wait "$LOAD_PID" 2>/dev/null || true
    start_server
    if ! curl -fsS "http://$ADDR/v1/invariants" | grep -q '"ok": *true'; then
        echo "FAIL: invariants dirty after mid-burst crash recovery" >&2
        curl -fsS "http://$ADDR/v1/invariants" >&2 || true
        exit 1
    fi
    state_metrics >"$TMP/a.metrics"

    echo "== recovery smoke 3: clean SIGTERM, restart, exact state match"
    kill -TERM "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    start_server
    state_metrics >"$TMP/b.metrics"
    if ! diff -u "$TMP/a.metrics" "$TMP/b.metrics"; then
        echo "FAIL: clean shutdown + restart changed the recovered state" >&2
        exit 1
    fi
    kill -TERM "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    grep -E 'journal: recovered' "$TMP/server.log" || true
    echo "== OK (recovery)"
    exit 0
fi

if [ "${1:-}" = "--overload" ]; then
    # In-process first: seeded overload episodes under the race detector
    # assert shedding, lane priority, latch/recovery and no degradation.
    echo "== chaos: 4 overload episodes under -race"
    go run -race ./cmd/chaos -overload -episodes 4 -q
    echo "== overload unit tests under -race"
    go test -race -count 1 -run 'TestRunOverload|TestExpiredCommandShed|TestPriorityLane|TestOverload|TestHTTPOverload|TestHTTPRateLimit|TestReadyz|TestLimiter|TestDetector' \
        ./internal/chaos/ ./internal/server/ ./internal/overload/

    # End-to-end: a race-built drserverd with a capped service rate, and
    # drload's open-loop burst at 4x the calibrated closed-loop rate. The
    # drill's own contract gates (sheds > 0, read p99 bounded, ready again
    # after the burst) decide the exit code.
    TMP="$(mktemp -d)"
    SRV_PID=""
    cleanup() {
        [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
        rm -rf "$TMP"
    }
    trap cleanup EXIT
    ADDR=127.0.0.1:18081
    echo "== building drserverd (-race) + drload"
    go build -race -o "$TMP/drserverd" ./cmd/drserverd
    go build -o "$TMP/drload" ./cmd/drload

    # -exec-delay caps the actor at ~500 cmd/s so the 4x burst reliably
    # overruns it; -rate-limit stays off here (the burst is one client).
    "$TMP/drserverd" -addr "$ADDR" -nodes 40 -seed 7 -queue 512 \
        -exec-delay 2ms -overload-target 100ms -overload-interval 1s \
        >"$TMP/server.log" 2>&1 &
    SRV_PID=$!
    i=0
    while ! curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: drserverd did not come up; log:" >&2
            cat "$TMP/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done

    echo "== overload smoke: 4x open-loop burst against live drserverd"
    "$TMP/drload" -addr "http://$ADDR" -overload \
        -overload-calibrate 2s -overload-duration 8s \
        -overload-read-p99-max 500ms -overload-recover-within 30s

    # The daemon must have logged the state transitions and still be sane.
    if ! grep -q 'OVERLOADED' "$TMP/server.log"; then
        echo "FAIL: drserverd never logged an OVERLOADED transition" >&2
        exit 1
    fi
    if ! curl -fsS "http://$ADDR/v1/invariants" | grep -q '"ok": *true'; then
        echo "FAIL: invariants dirty after the overload burst" >&2
        exit 1
    fi
    kill -TERM "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    echo "== OK (overload)"
    exit 0
fi

if [ "${1:-}" = "--forecast" ]; then
    # In-process first: estimator-feed correctness, staleness/fallback,
    # predictive latch, what-if and the HTTP surface, all under -race.
    echo "== forecast unit tests under -race"
    go test -race -count 1 -run 'TestForecast|TestWhatIf|TestDeltaTuning|TestDetectorPredicted|TestEstimator|TestRunOverload' \
        ./internal/forecast/ ./internal/server/ ./internal/overload/ \
        ./internal/estimator/ ./internal/chaos/

    # End-to-end: a race-built drserverd with live forecasting, driven by a
    # steady closed-loop drload run. drload's -forecast probe gates the
    # model against the measurement: |predicted-measured|/measured <= 10%.
    TMP="$(mktemp -d)"
    SRV_PID=""
    cleanup() {
        [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
        rm -rf "$TMP"
    }
    trap cleanup EXIT
    ADDR=127.0.0.1:18082
    echo "== building drserverd (-race) + drload"
    go build -race -o "$TMP/drserverd" ./cmd/drserverd
    go build -o "$TMP/drload" ./cmd/drload

    # -no-require-backup on the seed-3 topology gives a real standing
    # population (hundreds of channels, genuine bandwidth sharing); the
    # protected default on this sparse graph rejects ~90% and leaves the
    # model a trivial everyone-at-max comparison.
    "$TMP/drserverd" -addr "$ADDR" -nodes 40 -seed 3 -queue 256 \
        -no-require-backup -forecast-interval 500ms -forecast-predictive \
        >"$TMP/server.log" 2>&1 &
    SRV_PID=$!
    i=0
    while ! curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: drserverd did not come up; log:" >&2
            cat "$TMP/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done

    echo "== forecast smoke: steady closed-loop run, model within 10% of measurement"
    "$TMP/drload" -addr "http://$ADDR" -workers 4 -requests 10000 -seed 11 \
        -terminate-frac 0.4 -forecast -forecast-max-rel-err 0.10

    # The live surface must still answer, fresh, after the run.
    if ! curl -fsS "http://$ADDR/v1/forecast" | grep -q '"available": *true'; then
        echo "FAIL: /v1/forecast not available after the run" >&2
        curl -fsS "http://$ADDR/v1/forecast" >&2 || true
        exit 1
    fi
    if ! curl -fsS -X POST -H 'Content-Type: application/json' -d '{"count":5}' \
        "http://$ADDR/v1/forecast/whatif" | grep -q '"admit"'; then
        echo "FAIL: /v1/forecast/whatif did not answer a counterfactual" >&2
        exit 1
    fi
    if ! curl -fsS "http://$ADDR/metrics" | grep -q '^drqos_forecast_solves_total [1-9]'; then
        echo "FAIL: no successful solves on the metrics surface" >&2
        exit 1
    fi
    kill -TERM "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    echo "== OK (forecast)"
    exit 0
fi

if [ "${1:-}" = "--shard" ]; then
    # In-process first: the partition/2PC/recovery unit tests and the
    # seeded mid-2PC shard-kill episodes, all race-enabled.
    echo "== shard unit tests under -race"
    go test -race -count 1 ./internal/shard/
    go test -race -count 1 -run 'TestShardCrash' ./internal/chaos/
    echo "== chaos: 3 sharded mid-2PC kill episodes"
    go run ./cmd/chaos -shard -episodes 3 -q

    # End-to-end: a real drserverd -shards 4, cross-shard load, kill -9,
    # restart from the same per-shard journals.
    TMP="$(mktemp -d)"
    SRV_PID=""
    cleanup() {
        [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
        rm -rf "$TMP"
    }
    trap cleanup EXIT
    ADDR=127.0.0.1:18083
    echo "== building drserverd + drload"
    go build -o "$TMP/drserverd" ./cmd/drserverd
    go build -o "$TMP/drload" ./cmd/drload

    start_server() {
        "$TMP/drserverd" -addr "$ADDR" -kind tier -seed 7 -shards 4 \
            -data-dir "$TMP/data" -fsync -1 -snapshot-every 50 \
            >>"$TMP/server.log" 2>&1 &
        SRV_PID=$!
        i=0
        while ! curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; do
            i=$((i + 1))
            if [ "$i" -ge 100 ]; then
                echo "FAIL: sharded drserverd did not come up; log:" >&2
                cat "$TMP/server.log" >&2
                exit 1
            fi
            sleep 0.1
        done
    }

    # The deterministic slice of the sharded /metrics: aggregate and
    # per-shard populations, admission counters, the cross-connection
    # index. (The cross attempt/commit/abort counters persist via shard
    # snapshot headers, but a kill -9 rolls them back to the last
    # snapshot's tally, so they get their own lower-bound gate below
    # instead of riding the exact diff.)
    state_metrics() {
        curl -fsS "http://$ADDR/metrics" | grep -E \
            '^drqos_(connections_alive|connections_level|connections_unprotected|establish_requests_total|establish_rejects_total|links_failed|shard_connections_alive|cross_connections_active)'
    }

    echo "== shard smoke 1: cross-shard load against 4 shards"
    start_server
    if ! curl -fsS "http://$ADDR/v1/shards" | grep -q '"shards": *4'; then
        echo "FAIL: GET /v1/shards does not report 4 shards" >&2
        curl -fsS "http://$ADDR/v1/shards" >&2 || true
        exit 1
    fi
    "$TMP/drload" -addr "http://$ADDR" -workers 4 -requests 600 -seed 11 \
        -terminate-frac 0.1 -cross-frac 0.3 >"$TMP/load1.log" 2>&1
    if ! curl -fsS "http://$ADDR/metrics" | grep -Eq '^drqos_cross_commit_total [1-9]'; then
        echo "FAIL: the cross-shard load committed no two-phase establishes" >&2
        curl -fsS "http://$ADDR/metrics" | grep '^drqos_cross' >&2 || true
        exit 1
    fi
    state_metrics >"$TMP/pre.metrics"
    if ! grep -Eq '^drqos_cross_connections_active [1-9]' "$TMP/pre.metrics"; then
        echo "FAIL: no cross-shard connections alive before the kill" >&2
        cat "$TMP/pre.metrics" >&2
        exit 1
    fi

    echo "== shard smoke 2: kill -9, restart, exact per-shard state match"
    kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    start_server
    state_metrics >"$TMP/post.metrics"
    if ! diff -u "$TMP/pre.metrics" "$TMP/post.metrics"; then
        echo "FAIL: sharded state after kill -9 + restart differs from the journaled state" >&2
        exit 1
    fi
    # The 2PC counters travel in shard snapshot headers: after a kill -9
    # restart they must come back at least to the last snapshot's tally,
    # not reset to zero.
    if ! curl -fsS "http://$ADDR/metrics" | grep -Eq '^drqos_cross_commit_total [1-9]'; then
        echo "FAIL: cross-shard 2PC counters reset to zero across the restart" >&2
        curl -fsS "http://$ADDR/metrics" | grep '^drqos_cross' >&2 || true
        exit 1
    fi
    if ! curl -fsS "http://$ADDR/v1/invariants" | grep -q '"ok": *true'; then
        echo "FAIL: invariants dirty after sharded crash recovery" >&2
        curl -fsS "http://$ADDR/v1/invariants" >&2 || true
        exit 1
    fi

    echo "== shard smoke 3: recovered plane still admits intra + cross"
    "$TMP/drload" -addr "http://$ADDR" -workers 4 -requests 300 -seed 13 \
        -terminate-frac 0.1 -cross-frac 0.5 >"$TMP/load2.log" 2>&1
    kill -TERM "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
    echo "== OK (shard)"
    exit 0
fi

if [ "${1:-}" = "--failover" ]; then
    # In-process first: the full replica test matrix (streaming, lockstep
    # verification, semi-sync acks, promotion, fencing, re-bootstrap) and
    # the seeded primary-kill episodes, all race-enabled.
    echo "== replica unit tests under -race"
    go test -race -count 1 ./internal/replica/
    go test -race -count 1 -short -run 'TestRunFailover' ./internal/chaos/
    echo "== chaos: 2 primary-kill failover episodes"
    go run ./cmd/chaos -failover -episodes 2 -q

    # End-to-end: a real two-node drserverd pair, kill -9 the primary
    # mid-burst, sub-second promotion, surviving load, fenced rejoin with
    # bit-identical fingerprints.
    TMP="$(mktemp -d)"
    A_PID=""
    B_PID=""
    LOAD_PID=""
    cleanup() {
        [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
        [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
        [ -n "$LOAD_PID" ] && kill -9 "$LOAD_PID" 2>/dev/null || true
        rm -rf "$TMP"
    }
    trap cleanup EXIT
    A=127.0.0.1:18084
    B=127.0.0.1:18085
    echo "== building drserverd + drload"
    go build -o "$TMP/drserverd" ./cmd/drserverd
    go build -o "$TMP/drload" ./cmd/drload

    wait_up() {
        i=0
        while ! curl -fsS "$1/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            if [ "$i" -ge 100 ]; then
                echo "FAIL: $1 did not come up; logs:" >&2
                cat "$TMP"/*.log >&2
                exit 1
            fi
            sleep 0.1
        done
    }

    echo "== failover smoke 1: boot primary + warm standby"
    "$TMP/drserverd" -addr "$A" -nodes 40 -seed 7 -data-dir "$TMP/a" \
        -fsync -1 -advertise "http://$A" >"$TMP/a.log" 2>&1 &
    A_PID=$!
    wait_up "http://$A"
    "$TMP/drserverd" -addr "$B" -nodes 40 -seed 7 -data-dir "$TMP/b" \
        -fsync -1 -advertise "http://$B" -replica-of "http://$A" \
        -failover-timeout 300ms >"$TMP/b.log" 2>&1 &
    B_PID=$!
    wait_up "http://$B"
    if ! curl -fsS "http://$B/readyz" | grep -q '"role": *"follower"'; then
        echo "FAIL: standby does not report the follower role" >&2
        curl -fsS "http://$B/readyz" >&2 || true
        exit 1
    fi

    echo "== failover smoke 2: kill -9 the primary mid-burst, promotion < 1s"
    "$TMP/drload" -addr "http://$A,http://$B" -workers 4 -requests 100000 \
        -seed 17 -terminate-frac 0.1 -retries 8 -retry-base 20ms \
        >"$TMP/load1.log" 2>&1 &
    LOAD_PID=$!
    sleep 1
    T0=$(date +%s%N)
    kill -9 "$A_PID"; wait "$A_PID" 2>/dev/null || true
    A_PID=""
    while ! curl -fsS "http://$B/readyz" 2>/dev/null | grep -q '"role": *"primary"'; do
        if [ $(( ($(date +%s%N) - T0) / 1000000 )) -ge 5000 ]; then
            echo "FAIL: standby never promoted; standby log:" >&2
            tail -40 "$TMP/b.log" >&2
            exit 1
        fi
        sleep 0.02
    done
    PROMO_MS=$(( ($(date +%s%N) - T0) / 1000000 ))
    echo "   promotion observed after ${PROMO_MS}ms"
    if [ "$PROMO_MS" -ge 1000 ]; then
        echo "FAIL: promotion took ${PROMO_MS}ms, budget is 1000ms" >&2
        exit 1
    fi
    kill "$LOAD_PID" 2>/dev/null || true
    wait "$LOAD_PID" 2>/dev/null || true
    LOAD_PID=""

    echo "== failover smoke 3: load survives by rotating to the new primary"
    # The first endpoint in the list is the dead primary: every worker's
    # first attempt gets connection-refused, rotates, and must succeed —
    # so failovers_survived is deterministically non-zero.
    "$TMP/drload" -addr "http://$A,http://$B" -workers 4 -requests 200 \
        -seed 21 -terminate-frac 0.2 -fault-frac 0 -retries 6 \
        >"$TMP/load2.log" 2>&1
    if ! grep -Eq 'failovers_survived=[1-9]' "$TMP/load2.log"; then
        echo "FAIL: drload survived no failovers against a dead first endpoint" >&2
        cat "$TMP/load2.log" >&2
        exit 1
    fi
    if ! curl -fsS "http://$B/metrics" | grep -q '^drqos_promotions_total 1'; then
        echo "FAIL: new primary does not count exactly one promotion" >&2
        curl -fsS "http://$B/metrics" | grep '^drqos_\(promotions\|role\)' >&2 || true
        exit 1
    fi

    echo "== failover smoke 4: ex-primary rejoins fenced, fingerprints bit-identical"
    "$TMP/drserverd" -addr "$A" -nodes 40 -seed 7 -data-dir "$TMP/a" \
        -fsync -1 -advertise "http://$A" -replica-of "http://$B" \
        -failover-timeout 0 >>"$TMP/a.log" 2>&1 &
    A_PID=$!
    wait_up "http://$A"
    # Catch-up: the rejoined follower must reach the new primary's journal
    # tip (term record included) before the fingerprints can agree.
    TIP=$(curl -fsS "http://$B/metrics" | grep '^drqos_journal_seq ' | awk '{print $2}')
    i=0
    while [ "$(curl -fsS "http://$A/metrics" 2>/dev/null | grep '^drqos_journal_seq ' | awk '{print $2}')" != "$TIP" ]; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: rejoined ex-primary never caught up to seq $TIP; log:" >&2
            tail -40 "$TMP/a.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if ! curl -fsS "http://$A/readyz" | grep -q '"role": *"follower"'; then
        echo "FAIL: rejoined ex-primary did not demote to follower" >&2
        curl -fsS "http://$A/readyz" >&2 || true
        exit 1
    fi
    FP_A=$(curl -fsS "http://$A/v1/invariants" | sed -n 's/.*"fingerprint": *"\([0-9a-f]*\)".*/\1/p')
    FP_B=$(curl -fsS "http://$B/v1/invariants" | sed -n 's/.*"fingerprint": *"\([0-9a-f]*\)".*/\1/p')
    if [ -z "$FP_A" ] || [ "$FP_A" != "$FP_B" ]; then
        echo "FAIL: state fingerprints diverge after rejoin: a=$FP_A b=$FP_B" >&2
        exit 1
    fi
    echo "   fingerprints match: $FP_A"
    kill -TERM "$A_PID"; wait "$A_PID" 2>/dev/null || true
    A_PID=""
    kill -TERM "$B_PID"; wait "$B_PID" 2>/dev/null || true
    B_PID=""
    echo "== OK (failover)"
    exit 0
fi

if [ "${1:-}" = "--partition" ]; then
    # In-process first: the fault injector itself, the lease-fencing
    # matrix (symmetric + both asymmetric shapes, promote interlock), the
    # 2PC suspicion fast-path, and the seeded partition episodes — all
    # race-enabled.
    echo "== netchaos + lease + 2PC-suspicion tests under -race"
    go test -race -count 1 ./internal/netchaos/
    go test -race -count 1 -run 'TestLease|TestPromoteInterlock' ./internal/replica/
    go test -race -count 1 -run 'TestSuspectedShardFastFail503' ./internal/shard/
    go test -race -count 1 -short -run 'TestRunPartition' ./internal/chaos/
    echo "== chaos: 20 seeded partition episodes under -race"
    go run -race ./cmd/chaos -partition -episodes 20 -q

    # End-to-end: a real two-node pair with lease fencing on, the manual
    # promote interlock probed over HTTP, and the drload acked-mutation
    # ledger gated on zero loss across a kill + manual promote.
    TMP="$(mktemp -d)"
    A_PID=""
    B_PID=""
    cleanup() {
        [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
        [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
        rm -rf "$TMP"
    }
    trap cleanup EXIT
    A=127.0.0.1:18086
    B=127.0.0.1:18087
    echo "== building drserverd + drload"
    go build -o "$TMP/drserverd" ./cmd/drserverd
    go build -o "$TMP/drload" ./cmd/drload

    wait_up() {
        i=0
        while ! curl -fsS "$1/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            if [ "$i" -ge 100 ]; then
                echo "FAIL: $1 did not come up; logs:" >&2
                cat "$TMP"/*.log >&2
                exit 1
            fi
            sleep 0.1
        done
    }

    echo "== partition smoke 1: boot leased primary + manual-failover standby"
    "$TMP/drserverd" -addr "$A" -nodes 40 -seed 7 -data-dir "$TMP/a" \
        -fsync -1 -advertise "http://$A" -lease 200ms >"$TMP/a.log" 2>&1 &
    A_PID=$!
    wait_up "http://$A"
    # -failover-timeout 0: the standby never self-promotes; failover is
    # exercised through the manual promote endpoint and its interlock.
    "$TMP/drserverd" -addr "$B" -nodes 40 -seed 7 -data-dir "$TMP/b" \
        -fsync -1 -advertise "http://$B" -replica-of "http://$A" \
        -failover-timeout 0 -lease 200ms >"$TMP/b.log" 2>&1 &
    B_PID=$!
    wait_up "http://$B"
    if ! curl -fsS "http://$A/metrics" | grep -q '^drqos_replica_lease_lost 0'; then
        echo "FAIL: leased primary does not export drqos_replica_lease_lost" >&2
        curl -fsS "http://$A/metrics" | grep '^drqos_replica' >&2 || true
        exit 1
    fi

    echo "== partition smoke 2: promote interlock refuses while the primary is alive"
    CODE=$(curl -s -o "$TMP/promote1.json" -w '%{http_code}' \
        -X POST "http://$B/v1/admin/promote" -d '{}')
    if [ "$CODE" != "409" ]; then
        echo "FAIL: promote with a live primary answered $CODE, want 409" >&2
        cat "$TMP/promote1.json" >&2 || true
        exit 1
    fi
    if ! grep -q 'force' "$TMP/promote1.json"; then
        echo "FAIL: interlock refusal does not mention the force override" >&2
        cat "$TMP/promote1.json" >&2
        exit 1
    fi

    echo "== partition smoke 3: drload ledger run against the healthy pair"
    "$TMP/drload" -addr "http://$A,http://$B" -workers 4 -requests 300 \
        -seed 29 -terminate-frac 0.2 -fault-frac 0 -retries 6 \
        >"$TMP/load1.log" 2>&1
    if ! grep -q 'acked_lost=0' "$TMP/load1.log"; then
        echo "FAIL: healthy-pair drload run reported acked loss (or no ledger)" >&2
        cat "$TMP/load1.log" >&2
        exit 1
    fi

    echo "== partition smoke 4: kill -9 the primary, manual promote succeeds"
    kill -9 "$A_PID"; wait "$A_PID" 2>/dev/null || true
    A_PID=""
    # The interlock window (one lease) has to lapse before the standby
    # stops vouching for its primary.
    i=0
    while :; do
        CODE=$(curl -s -o "$TMP/promote2.json" -w '%{http_code}' \
            -X POST "http://$B/v1/admin/promote" -d '{}')
        [ "$CODE" = "200" ] && break
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: manual promote never succeeded after the kill (last: $CODE)" >&2
            cat "$TMP/promote2.json" >&2 || true
            tail -30 "$TMP/b.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if ! curl -fsS "http://$B/readyz" | grep -q '"role": *"primary"'; then
        echo "FAIL: standby does not report the primary role after manual promote" >&2
        curl -fsS "http://$B/readyz" >&2 || true
        exit 1
    fi

    echo "== partition smoke 5: drload ledger run against the survivor, zero acked loss"
    "$TMP/drload" -addr "http://$A,http://$B" -workers 4 -requests 300 \
        -seed 31 -terminate-frac 0.2 -fault-frac 0 -retries 6 \
        >"$TMP/load2.log" 2>&1
    if ! grep -q 'acked_lost=0' "$TMP/load2.log"; then
        echo "FAIL: post-failover drload run reported acked loss (or no ledger)" >&2
        cat "$TMP/load2.log" >&2
        exit 1
    fi
    kill -TERM "$B_PID"; wait "$B_PID" 2>/dev/null || true
    B_PID=""
    echo "== OK (partition)"
    exit 0
fi

# -timeout is per test binary: internal/experiments runs full quick-scale
# reproductions (plus the worker-determinism replays) and needs more than
# the default 10m under the race detector on small machines.
echo "== go test -race ./..."
go test -race -timeout 45m ./...
echo "== OK"
