#!/usr/bin/env sh
# Tier-1 verification: build, vet, and run the full test suite with the
# race detector (the internal/server actor loop must stay race-clean).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
# -timeout is per test binary: internal/experiments runs full quick-scale
# reproductions (plus the worker-determinism replays) and needs more than
# the default 10m under the race detector on small machines.
echo "== go test -race ./..."
go test -race -timeout 45m ./...
echo "== OK"
