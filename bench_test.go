// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§4), plus the DESIGN.md ablations and the micro
// benchmarks of the two hottest kernels. Each experiment benchmark runs the
// corresponding experiment end to end (topology generation → simulation →
// parameter estimation → Markov solve) at Quick scale and reports, besides
// wall time, the reproduction-quality metric that matters for that
// experiment (e.g. the relative error between model and simulation).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks fan their sweep points over a worker pool; pick
// the pool size with -bench-parallel (0 = GOMAXPROCS, 1 = the sequential
// path). Results are bit-identical either way, so the knob only moves wall
// time:
//
//	go test -bench=Fig2 -bench-parallel 1
//
// Regenerate the paper-scale numbers instead with:
//
//	go run ./cmd/experiments -run all -scale full
package drqos_test

import (
	"flag"
	"math"
	"testing"

	"drqos/internal/core"
	"drqos/internal/experiments"
	"drqos/internal/manager"
	"drqos/internal/markov"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/sim"
	"drqos/internal/topology"
)

// benchParallel is the sweep-point worker count for every experiment
// benchmark (0 = GOMAXPROCS, 1 = sequential).
var benchParallel = flag.Int("bench-parallel", 0, "experiment sweep workers (0 = GOMAXPROCS, 1 = sequential)")

// benchConfig is the per-iteration experiment config: a fresh seed each
// iteration, at the configured parallelism.
func benchConfig(i int) experiments.Config {
	return experiments.Config{Seed: uint64(i + 1), Workers: *benchParallel}
}

// BenchmarkFig2AvgBandwidthVsLoad regenerates Figure 2: the average
// reserved bandwidth as the number of DR-connections grows, simulated and
// analytic. Reported metrics: mean |model−sim|/sim over the sweep, and the
// bandwidth drop from the lightest to the heaviest load (the figure's
// shape).
func BenchmarkFig2AvgBandwidthVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		var relErr float64
		for _, p := range res.Points {
			relErr += math.Abs(p.Analytic-p.SimAvg) / p.SimAvg
		}
		relErr /= float64(len(res.Points))
		b.ReportMetric(relErr, "model-relerr")
		drop := res.Points[0].SimAvg - res.Points[len(res.Points)-1].SimAvg
		b.ReportMetric(drop, "Kbps-drop")
	}
}

// BenchmarkTable1IncrementSizes regenerates Table 1: 5-state (Δ=100) vs
// 9-state (Δ=50) chains on Random and Tier networks. Reported metric: the
// mean relative difference between the two chain sizes (the paper's point
// is that it is small).
func BenchmarkTable1IncrementSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		var diff float64
		for _, row := range res.Rows {
			diff += math.Abs(row.Random5-row.Random9) / math.Max(row.Random5, row.Random9)
		}
		b.ReportMetric(diff/float64(len(res.Rows)), "5v9-reldiff")
	}
}

// BenchmarkFig3AvgBandwidthVsNodes regenerates Figure 3: average bandwidth
// as the node count grows under fixed Waxman parameters. Reported metric:
// the edge growth factor across the sweep (the figure's dotted overlay).
func BenchmarkFig3AvgBandwidthVsNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.Links)/float64(first.Links), "edge-growth")
		b.ReportMetric(last.SimAvg-first.SimAvg, "Kbps-gain")
	}
}

// BenchmarkFig4FailureRates regenerates Figure 4: average bandwidth across
// link failure rates spanning five orders of magnitude. Reported metric:
// the max relative spread of the bandwidth across rates EXCLUDING the
// extreme γ=1e-2 point (the paper's conclusion is that the spread is
// negligible because γ ≪ λ, μ).
func BenchmarkFig4FailureRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range res.Points[:len(res.Points)-1] {
			lo = math.Min(lo, p.Avg2000)
			hi = math.Max(hi, p.Avg2000)
		}
		b.ReportMetric((hi-lo)/hi, "gamma-spread")
	}
}

// BenchmarkAblationElasticVsSingleValue regenerates Ablation A: elastic QoS
// vs the fixed-min and fixed-max single-value baselines. Reported metrics:
// elastic's acceptance advantage over fixed-max and utilization advantage
// over fixed-min at the heaviest load.
func BenchmarkAblationElasticVsSingleValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationA(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Elastic.AcceptanceRatio-last.FixedMax.AcceptanceRatio, "accept-gain")
		b.ReportMetric(last.Elastic.AvgBandwidth/last.FixedMin.AvgBandwidth, "bw-vs-fixmin")
	}
}

// BenchmarkAblationAdaptationPolicies regenerates Ablation B: the
// coefficient (proportional) vs max-utility adaptation schemes (§2.2).
// Reported metric: the high/low-utility bandwidth gap under each policy.
func BenchmarkAblationAdaptationPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationB(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.HighUtilAvg-row.LowUtilAvg, row.Policy+"-gap")
		}
	}
}

// BenchmarkAblationBackupMultiplexing regenerates Ablation C: backup
// multiplexing (overbooking, §2.1.2) on vs off. Reported metric: the
// acceptance-ratio advantage multiplexing buys at the heaviest load.
func BenchmarkAblationBackupMultiplexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationC(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.MuxAcceptance-last.NoMuxAcceptance, "mux-accept-gain")
	}
}

// BenchmarkAblationRouteSelection regenerates Ablation D: bounded flooding
// vs sequential shortest-route selection (§2.1.1). Reported metric: the
// acceptance advantage of flooding at the heaviest load.
func BenchmarkAblationRouteSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationD(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.FloodAcceptance-last.SeqAcceptance, "flood-accept-gain")
	}
}

// BenchmarkCoverageExtension regenerates the protection-coverage sweep.
// Reported metric: the unprotected fraction at the top failure rate.
func BenchmarkCoverageExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Coverage(benchConfig(i))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.UnprotectedFrac, "unprotected-frac")
	}
}

// BenchmarkMarkovSolve9State measures the SHARPE-substitute solver on the
// paper's 9-state chain (the per-data-point analytic cost).
func BenchmarkMarkovSolve9State(b *testing.B) {
	// Parameters measured from a representative Figure 2 run.
	sys, err := core.NewSystem(core.Options{
		Seed: 1, InitialConns: 800, ChurnEvents: 400, WarmupEvents: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	ev, err := sys.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	chain, err := markov.Build(ev.Sim.Params)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.SteadyStateFrom(ev.Sim.BirthDist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstablish measures one DR-connection establishment (flooding +
// admission + backup multiplexing + redistribution) on a loaded
// paper-scale network.
func BenchmarkEstablish(b *testing.B) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: core.PaperAlpha, Beta: core.PaperBeta, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Seed: 4,
		Spec: qos.DefaultSpec(),
		Manager: manager.Config{
			Capacity:      core.PaperCapacity,
			RequireBackup: true,
		},
		Lambda:       0.001,
		Mu:           0.001,
		InitialConns: 2000,
		ChurnEvents:  b.N + 1,
		WarmupEvents: 0,
	}
	s, err := sim.New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
