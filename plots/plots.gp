# Regenerates the paper's figures from the .dat files in this directory.
# Usage: gnuplot plots.gp     (produces fig2.png ... fig4.png)
set terminal pngcairo size 900,600
set grid

set output "fig2.png"
set title "Figure 2: average bandwidth vs number of DR-connections"
set xlabel "DR-connections offered"; set ylabel "bandwidth (Kbps)"
set yrange [0:550]
plot "fig2.dat" using 1:3:4 with yerrorlines title "simulation", \
     "fig2.dat" using 1:5 with linespoints title "Markov model", \
     "fig2.dat" using 1:7 with lines dashtype 2 title "ideal"

set output "fig3.png"
set title "Figure 3: average bandwidth vs number of nodes"
set xlabel "nodes"; set ylabel "bandwidth (Kbps)"
set y2label "links"; set y2tics
plot "fig3.dat" using 1:4 with linespoints title "simulation", \
     "fig3.dat" using 1:5 with linespoints title "Markov model", \
     "fig3.dat" using 1:2 axes x1y2 with lines dashtype 2 title "links"

set y2tics; unset y2label; unset y2tics
set output "fig4.png"
set title "Figure 4: average bandwidth vs link failure rate"
set xlabel "failure rate"; set ylabel "bandwidth (Kbps)"
set logscale x
set yrange [0:550]
plot "fig4.dat" using 1:2 with linespoints title "sim (load A)", \
     "fig4.dat" using 1:3 with linespoints title "Markov (load A)", \
     "fig4.dat" using 1:5 with linespoints title "sim (load B)", \
     "fig4.dat" using 1:6 with linespoints title "Markov (load B)"
unset logscale x

set output "table1.png"
set title "Table 1: 5-state vs 9-state chains"
set xlabel "channels"; set ylabel "bandwidth (Kbps)"
set yrange [0:550]
plot "table1.dat" using 1:2 with linespoints title "random, 5 states", \
     "table1.dat" using 1:3 with linespoints title "random, 9 states", \
     "table1.dat" using 1:5 with linespoints title "tier, 5 states", \
     "table1.dat" using 1:6 with linespoints title "tier, 9 states"
