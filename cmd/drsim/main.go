// Command drsim runs one detailed simulation of dependable real-time
// connections with elastic QoS and prints the measured metrics and model
// parameters. With -params-out it writes the measured markov.Params (plus
// birth distribution and restart rate) as JSON for cmd/drmarkov.
//
// Example — one Figure 2 data point:
//
//	drsim -nodes 100 -conns 3000 -churn 2000 -warmup 400 -seed 5
package main

import (
	"flag"
	"fmt"
	"os"

	"drqos/internal/analytic"
	"drqos/internal/core"
	"drqos/internal/modelio"
	"drqos/internal/qos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind      = flag.String("kind", "waxman", "topology: waxman or tier")
		nodes     = flag.Int("nodes", 100, "node count (waxman)")
		seed      = flag.Uint64("seed", 1, "seed for topology and workload")
		conns     = flag.Int("conns", 3000, "initial DR-connection requests")
		churn     = flag.Int("churn", 2000, "measured churn events")
		warmup    = flag.Int("warmup", 400, "warmup events before measurement")
		lambda    = flag.Float64("lambda", 0.001, "arrival rate")
		mu        = flag.Float64("mu", 0.001, "termination rate")
		gamma     = flag.Float64("gamma", 0, "link failure rate")
		repair    = flag.Float64("repair", 0.01, "link repair rate (with -gamma)")
		capacity  = flag.Int64("capacity", int64(core.PaperCapacity), "link capacity per direction (Kbps)")
		minBW     = flag.Int64("min", 100, "elastic minimum (Kbps)")
		maxBW     = flag.Int64("max", 500, "elastic maximum (Kbps)")
		inc       = flag.Int64("inc", 50, "elastic increment (Kbps)")
		policy    = flag.String("policy", "coefficient", "adaptation policy: coefficient or max-utility")
		noBackup  = flag.Bool("no-require-backup", false, "accept unprotectable connections")
		noMux     = flag.Bool("no-multiplex", false, "disable backup multiplexing")
		paramsOut = flag.String("params-out", "", "write measured model parameters as JSON")
		traceOut  = flag.String("trace", "", "write a JSONL event trace to this file")
	)
	flag.Parse()

	pol, err := qos.PolicyByName(*policy)
	if err != nil {
		return err
	}
	k := core.TopologyWaxman
	if *kind == "tier" {
		k = core.TopologyTransitStub
	} else if *kind != "waxman" {
		return fmt.Errorf("unknown kind %q", *kind)
	}
	opts := core.Options{
		Seed: *seed,
		Kind: k, Nodes: *nodes,
		Capacity: qos.Kbps(*capacity),
		Spec: qos.ElasticSpec{
			Min: qos.Kbps(*minBW), Max: qos.Kbps(*maxBW),
			Increment: qos.Kbps(*inc), Utility: 1,
		},
		Lambda: *lambda, Mu: *mu, Gamma: *gamma, RepairRate: *repair,
		Policy:                    pol,
		NoRequireBackup:           *noBackup,
		DisableBackupMultiplexing: *noMux,
		InitialConns:              *conns,
		ChurnEvents:               *churn,
		WarmupEvents:              *warmup,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.Trace = f
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return err
	}
	m := sys.Metrics()
	fmt.Printf("topology: %d nodes, %d links (%d directed), diameter %d, avg hops %.2f\n",
		m.Nodes, m.Edges, 2*m.Edges, m.Diameter, m.AvgHops)

	ev, err := sys.Evaluate()
	if err != nil {
		return err
	}
	res := ev.Sim
	fmt.Printf("workload: offered=%d established=%d rejected=%d terminated=%d dropped=%d failures=%d\n",
		res.Offered, res.Established, res.Rejected, res.Terminated, res.Dropped, res.Failures)
	fmt.Printf("population: alive=%d (avg %.1f), avg primary hops %.2f\n",
		res.AliveAtEnd, res.AvgAlive, res.AvgHops)
	fmt.Printf("average bandwidth: sim=%.1f ± %.1f Kbps (final %.1f)\n", res.AvgBandwidth, res.AvgBandwidthCI95, res.FinalAvgBandwidth)
	fmt.Printf("analytic: paper-model=%.1f restart-model=%.1f general-model=%.1f ideal=%.0f\n",
		ev.PaperModel.MeanBandwidth, ev.RestartModel.MeanBandwidth,
		ev.GeneralModel.MeanBandwidth, ev.IdealBandwidth)
	fmt.Printf("measured: Pf=%.4f Ps=%.4f effλ=%.6f effμ=%.6f effγ=%.6f\n",
		res.Params.Pf, res.Params.Ps, res.EffectiveLambda, res.EffectiveMu, res.EffectiveGamma)
	if pfPred, err := analytic.Pf(sys.Graph().NumDirLinks(), res.AvgHops); err == nil {
		psPred, _ := analytic.Ps(sys.Graph().NumDirLinks(), res.AvgHops, res.AliveAtEnd)
		fmt.Printf("mean-field prediction: Pf=%.4f Ps=%.4f (see internal/analytic)\n", pfPred, psPred)
	}
	fmt.Printf("discarded jump mass: A=%.3f B=%.3f T=%.3f\n",
		res.DiscardedA, res.DiscardedB, res.DiscardedT)
	fmt.Printf("state occupancy (sim): %s\n", fmtDist(res.EmpiricalPi))
	fmt.Printf("state occupancy (markov): %s\n", fmtDist(ev.RestartModel.Pi))

	if *paramsOut != "" {
		delta := 0.0
		if res.AvgAlive > 0 {
			delta = res.EffectiveMu / res.AvgAlive
		}
		doc := &modelio.Document{
			Params:        res.Params,
			BirthDist:     res.BirthDist,
			Delta:         delta,
			SpecMin:       qos.Kbps(*minBW),
			SpecMax:       qos.Kbps(*maxBW),
			SpecIncrement: qos.Kbps(*inc),
		}
		f, err := os.Create(*paramsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := modelio.Write(f, doc); err != nil {
			return err
		}
		fmt.Printf("wrote model parameters to %s\n", *paramsOut)
	}
	return nil
}

func fmtDist(pi []float64) string {
	out := ""
	for i, p := range pi {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", p)
	}
	return out
}
