// Command drserverd runs the DR-connection admission service as an HTTP
// daemon: it generates a topology, wraps the elastic-QoS manager in the
// internal/server actor loop, and serves the JSON API until SIGINT/SIGTERM,
// then shuts down gracefully (HTTP first, then the command loop drains).
//
//	drserverd -addr :8080 -nodes 100 -seed 1
//
// With -data-dir the daemon is durable: every mutation is written to a
// write-ahead journal before it is applied, snapshots bound replay, and a
// restart (or a kill -9) rebuilds the exact pre-crash state from disk. If
// the replayed state fails the invariant audit the daemon refuses to serve
// and exits non-zero — better no service than a service lying about its
// reservations. A degraded daemon (invariant violation at run time) can be
// returned to service with POST /v1/admin/recover, or automatically with
// -auto-recover.
//
// Under sustained overload (actor-queue delay above -overload-target for
// -overload-interval) the daemon sheds new establishes with 503 +
// Retry-After while terminations, repairs and reads stay live; -rate-limit
// adds a per-client token bucket (429 + Retry-After) on top.
//
// With -forecast-interval the daemon runs the live analytic control plane:
// the paper's Markov model is re-solved from live-estimated parameters on
// that cadence and served on GET /v1/forecast (plus POST /v1/forecast/whatif
// admission counterfactuals); -forecast-predictive lets model-predicted
// saturation pre-latch overload shedding before the reactive detector fires.
//
// Endpoints: POST /v1/connections, DELETE /v1/connections/{id},
// POST /v1/faults/link, POST /v1/admin/recover, GET /v1/stats,
// GET /v1/invariants, GET /v1/forecast, POST /v1/forecast/whatif,
// GET /metrics, GET /healthz, GET /readyz.
//
// With -shards N (N > 1) the daemon partitions the topology into N region
// shards, each with its own manager, actor loop and journal directory
// (shard-000, shard-001, ... under -data-dir); cross-shard establishes go
// through a two-phase prepare/commit across the owning shards, and the
// sharded front end adds GET /v1/shards. -shards 1 (the default) is
// byte-identical to the unsharded daemon.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"drqos/internal/core"
	"drqos/internal/forecast"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/overload"
	"drqos/internal/qos"
	"drqos/internal/replica"
	"drqos/internal/server"
	"drqos/internal/shard"
	"drqos/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drserverd:", err)
		os.Exit(1)
	}
}

// dataMeta pins a data directory to the topology and admission config that
// produced its journal. Replay is only meaningful against the identical
// deterministic setup, so a mismatch is a hard startup error.
type dataMeta struct {
	Kind          string `json:"kind"`
	Nodes         int    `json:"nodes"`
	Seed          uint64 `json:"seed"`
	CapacityKbps  int64  `json:"capacity_kbps"`
	Policy        string `json:"policy"`
	RequireBackup bool   `json:"require_backup"`
	Multiplex     bool   `json:"multiplex"`
}

// checkMeta writes meta.json on first use and verifies it on every restart.
func checkMeta(dir string, want dataMeta) error {
	path := filepath.Join(dir, "meta.json")
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		b, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var have dataMeta
	if err := json.Unmarshal(raw, &have); err != nil {
		return fmt.Errorf("data dir %s: unreadable meta.json: %w", dir, err)
	}
	if have != want {
		return fmt.Errorf("data dir %s was written under config %+v, but this process started with %+v — "+
			"journal replay is only valid against the identical topology and admission config; "+
			"fix the flags or point -data-dir at a fresh directory", dir, have, want)
	}
	return nil
}

// statesLabel renders the -forecast-states flag for the startup log line.
func statesLabel(states int) string {
	if states <= 1 {
		return "default"
	}
	return fmt.Sprintf("%d", states)
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kind     = flag.String("kind", "waxman", "topology: waxman or tier")
		nodes    = flag.Int("nodes", 100, "node count (waxman)")
		seed     = flag.Uint64("seed", 1, "topology seed")
		capacity = flag.Int64("capacity", int64(core.PaperCapacity), "link capacity per direction (Kbps)")
		policy   = flag.String("policy", "coefficient", "adaptation policy: coefficient or max-utility")
		noBackup = flag.Bool("no-require-backup", false, "accept unprotectable connections")
		noMux    = flag.Bool("no-multiplex", false, "disable backup multiplexing")
		queue    = flag.Int("queue", 256, "actor command-queue depth")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget")
		shards   = flag.Int("shards", 1, "region shards; >1 partitions the topology into per-region manager+journal shards with two-phase cross-shard establishes (1 = the classic single-plane daemon)")

		// Replication / high availability.
		replicaOf  = flag.String("replica-of", "", "boot as a warm standby of this primary base URL (e.g. http://10.0.0.1:8080), continuously replaying its journal stream; requires -data-dir")
		advertise  = flag.String("advertise", "", "this node's externally reachable base URL, used by a follower to redirect mutations (defaults to the -replica-of protocol idiom; informational for a primary)")
		failoverTO = flag.Duration("failover-timeout", 750*time.Millisecond, "a standby promotes itself after this long without a successful fetch from the primary (0 = manual promotion via POST /v1/admin/promote only)")
		leaseFlag  = flag.Duration("lease", -1, "lease-based primary fencing: a primary that goes this long without a standby poll stops acknowledging mutations (503) until polling resumes; must be shorter than -failover-timeout (-1 = failover-timeout/2, 0 = disabled)")

		// Durability.
		dataDir   = flag.String("data-dir", "", "journal directory; empty runs in-memory (no durability)")
		fsync     = flag.Int("fsync", 1, "fsync the journal every N events (1 = every event, durable against power loss; negative = let the OS flush)")
		snapEvery = flag.Int("snapshot-every", 1024, "write a state snapshot every N journaled events (negative disables)")
		gcWait    = flag.Duration("group-commit-max-wait", 2*time.Millisecond, "batch concurrent journal fsyncs under this latency cap, keeping -fsync 1 durability while amortizing the sync (only with -fsync 1; 0 disables group commit)")

		// Read path.
		epochEvery = flag.Duration("epoch-interval", 25*time.Millisecond, "staleness cap on the published epoch snapshot serving GET /v1/stats and /metrics under sustained load")

		// Automatic recovery from degraded mode.
		autoRecover    = flag.Bool("auto-recover", false, "on an invariant violation, rebuild from the journal automatically instead of waiting for POST /v1/admin/recover")
		recoverBackoff = flag.Duration("recover-backoff", 100*time.Millisecond, "initial auto-recover retry backoff")
		recoverMaxWait = flag.Duration("recover-max-backoff", 5*time.Second, "auto-recover backoff cap")
		recoverTries   = flag.Int("recover-max-attempts", 0, "auto-recover attempt limit (0 = unlimited)")

		// HTTP server hardening: slow or hostile clients must not pin
		// connections (and goroutines) forever.
		readTimeout   = flag.Duration("read-timeout", 30*time.Second, "http.Server.ReadTimeout (full request read)")
		readHdrTO     = flag.Duration("read-header-timeout", 5*time.Second, "http.Server.ReadHeaderTimeout (slowloris guard)")
		idleTimeout   = flag.Duration("idle-timeout", 2*time.Minute, "http.Server.IdleTimeout for keep-alive connections")
		maxHeaderByte = flag.Int("max-header-bytes", 1<<20, "http.Server.MaxHeaderBytes")

		// Overload control plane.
		overloadTarget   = flag.Duration("overload-target", 100*time.Millisecond, "actor queueing-delay target; sustained delay above it sheds new establishes with 503 (negative disables)")
		overloadInterval = flag.Duration("overload-interval", time.Second, "how long delay must stay above -overload-target before shedding starts; also the Retry-After hint")
		rateLimit        = flag.Float64("rate-limit", 0, "per-client mutation budget in requests/second, keyed by X-Client-ID or remote host (0 disables)")
		rateBurst        = flag.Float64("rate-burst", 0, "per-client burst allowance on top of -rate-limit (0 = same as -rate-limit)")
		maxBodyBytes     = flag.Int64("max-body-bytes", 1<<20, "request-body cap on mutation endpoints; oversized bodies answer 413")
		pprofOn          = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live overload investigation")
		execDelay        = flag.Duration("exec-delay", 0, "artificial per-command execution delay — overload drills only, caps the service rate so a burst reliably overruns it")

		// Live analytic control plane (internal/forecast).
		forecastInterval   = flag.Duration("forecast-interval", 0, "re-solve the live Markov forecast this often, serving GET /v1/forecast (0 disables forecasting)")
		forecastStates     = flag.Int("forecast-states", 0, "bandwidth states the forecast models over the default spec's range (0 = the spec's own grid, 9 states)")
		forecastPredictive = flag.Bool("forecast-predictive", false, "let model-predicted saturation pre-latch overload shedding before the reactive queue-delay detector fires")
		forecastTimeout    = flag.Duration("forecast-timeout", 0, "per-solve deadline; an overrun serves the previous forecast marked stale (0 = the forecast interval)")
	)
	flag.Parse()

	pol, err := qos.PolicyByName(*policy)
	if err != nil {
		return err
	}
	if *replicaOf != "" && *dataDir == "" {
		return errors.New("-replica-of needs -data-dir: a standby replays the primary's journal into its own")
	}
	if *replicaOf != "" && *shards > 1 {
		return errors.New("-replica-of is incompatible with -shards > 1 (replication is per-plane)")
	}
	k := core.TopologyWaxman
	if *kind == "tier" {
		k = core.TopologyTransitStub
	} else if *kind != "waxman" {
		return fmt.Errorf("unknown kind %q", *kind)
	}
	sys, err := core.NewSystem(core.Options{Seed: *seed, Kind: k, Nodes: *nodes})
	if err != nil {
		return err
	}
	m := sys.Metrics()
	log.Printf("topology: %d nodes, %d links, diameter %d, avg hops %.2f (seed %d)",
		m.Nodes, m.Edges, m.Diameter, m.AvgHops, *seed)

	mcfg := manager.Config{
		Capacity:                  qos.Kbps(*capacity),
		Policy:                    pol,
		RequireBackup:             !*noBackup,
		DisableBackupMultiplexing: *noMux,
	}

	if *shards > 1 {
		return runSharded(shardedConfig{
			addr: *addr, drain: *drain,
			graph: sys.Graph(), shards: *shards, dataDir: *dataDir,
			meta: dataMeta{
				Kind: *kind, Nodes: *nodes, Seed: *seed, CapacityKbps: *capacity,
				Policy: *policy, RequireBackup: !*noBackup, Multiplex: !*noMux,
			},
			manager: mcfg,
			journal: journal.Options{
				FsyncEvery:         *fsync,
				GroupCommit:        *gcWait > 0 && *fsync == 1,
				GroupCommitMaxWait: *gcWait,
			},
			server: server.Options{
				QueueDepth:    *queue,
				SnapshotEvery: *snapEvery,
				EpochInterval: *epochEvery,
				Recover: server.RecoverPolicy{
					Auto:           *autoRecover,
					InitialBackoff: *recoverBackoff,
					MaxBackoff:     *recoverMaxWait,
					MaxAttempts:    *recoverTries,
				},
				Overload:  overload.DetectorConfig{Target: *overloadTarget, Interval: *overloadInterval},
				ExecDelay: *execDelay,
			},
			rateLimit: *rateLimit, rateBurst: *rateBurst, maxBodyBytes: *maxBodyBytes,
			readTimeout: *readTimeout, readHdrTO: *readHdrTO,
			idleTimeout: *idleTimeout, maxHeaderByte: *maxHeaderByte,
			forecastOn: *forecastInterval > 0, pprofOn: *pprofOn,
		})
	}

	var jnl *journal.Journal
	var mgr *manager.Manager
	var rec *journal.Recovered
	if *dataDir != "" {
		if err := checkMeta(*dataDir, dataMeta{
			Kind: *kind, Nodes: *nodes, Seed: *seed, CapacityKbps: *capacity,
			Policy: *policy, RequireBackup: !*noBackup, Multiplex: !*noMux,
		}); err != nil {
			return err
		}
		groupCommit := *gcWait > 0 && *fsync == 1
		if *gcWait > 0 && *fsync != 1 {
			// Group commit's whole contract is FsyncEvery:1 semantics; any
			// other policy already trades durability for throughput and has
			// nothing to batch.
			log.Printf("journal: -group-commit-max-wait ignored with -fsync %d (group commit requires -fsync 1)", *fsync)
		}
		jnl, rec, err = journal.Open(*dataDir, journal.Options{
			FsyncEvery:         *fsync,
			GroupCommit:        groupCommit,
			GroupCommitMaxWait: *gcWait,
		})
		if err != nil {
			return fmt.Errorf("opening journal: %w", err)
		}
		if groupCommit {
			log.Printf("journal: group commit on (batch fsyncs under %s, per-event durability preserved)", *gcWait)
		}
		defer jnl.Close()
		mgr, err = server.Rebuild(sys.Graph(), mcfg, rec)
		if err != nil {
			return fmt.Errorf("refusing to serve: journal replay of %s did not produce an audit-clean state: %w\n"+
				"(the on-disk history and the state machine disagree — restore the directory from a backup, "+
				"or move it aside to start from an empty state)", *dataDir, err)
		}
		if rec.TornBytes > 0 {
			log.Printf("journal: discarded %d bytes of torn tail (mid-write crash)", rec.TornBytes)
		}
		log.Printf("journal: recovered %s to seq %d (snapshot at %d, %d events replayed, %d connections alive)",
			*dataDir, rec.LastSeq, rec.SnapshotSeq, len(rec.Events), mgr.AliveCount())
	} else {
		mgr, err = manager.New(sys.Graph(), mcfg)
		if err != nil {
			return err
		}
	}

	var fcfg *forecast.Config
	if *forecastInterval > 0 {
		fcfg = &forecast.Config{
			States:       *forecastStates,
			Interval:     *forecastInterval,
			SolveTimeout: *forecastTimeout,
			Predictive:   *forecastPredictive,
			OnPredict: func(saturated bool) {
				if saturated {
					log.Printf("FORECAST: model predicts saturation — pre-latching overload shedding")
				} else {
					log.Printf("forecast: predicted saturation cleared, admitting establishes again")
				}
			},
		}
		log.Printf("forecast: solving every %s (%s states, predictive=%v)",
			*forecastInterval, statesLabel(*forecastStates), *forecastPredictive)
	}

	// Replication node: built after the server (it wraps it), but the
	// server's semi-sync and stats hooks close over the variable — they
	// only fire once requests flow, well after the node exists.
	var node *replica.Node
	srvOpts := server.Options{
		QueueDepth:    *queue,
		Journal:       jnl,
		SnapshotEvery: *snapEvery,
		EpochInterval: *epochEvery,
		Recover: server.RecoverPolicy{
			Auto:           *autoRecover,
			InitialBackoff: *recoverBackoff,
			MaxBackoff:     *recoverMaxWait,
			MaxAttempts:    *recoverTries,
		},
		OnDegrade: func(reason string) {
			if jnl != nil {
				log.Printf("DEGRADED: %s — refusing mutations, still serving reads; POST /v1/admin/recover to rebuild from the journal", reason)
			} else {
				log.Printf("DEGRADED: %s — refusing mutations, still serving reads; restart to recover", reason)
			}
		},
		OnRecover: func(seq uint64) {
			log.Printf("RECOVERED: rebuilt from journal to seq %d, serving mutations again", seq)
		},
		Overload:  overload.DetectorConfig{Target: *overloadTarget, Interval: *overloadInterval},
		ExecDelay: *execDelay,
		Forecast:  fcfg,
		OnOverload: func(on bool) {
			if on {
				log.Printf("OVERLOADED: sustained actor-queue delay above %s — shedding new establishes with 503, terminations and reads stay live", *overloadTarget)
			} else {
				log.Printf("overload cleared: queue delay back under %s, admitting establishes again", *overloadTarget)
			}
		},
	}
	if jnl != nil {
		srvOpts.Follower = *replicaOf != ""
		srvOpts.Term = rec.Term
		srvOpts.WaitReplicated = func(ctx context.Context, seq uint64) error {
			if node == nil {
				return nil
			}
			return node.WaitReplicated(ctx, seq)
		}
		srvOpts.ReplicaStats = func() *server.ReplicaStats {
			if node == nil {
				return nil
			}
			return node.StatsBlock()
		}
	}
	srv, err := server.NewFromManager(sys.Graph(), mgr, srvOpts)
	if err != nil {
		return err
	}

	handlerOpts := []server.HandlerOption{server.WithMaxBodyBytes(*maxBodyBytes)}
	if *rateLimit > 0 {
		handlerOpts = append(handlerOpts, server.WithRateLimit(*rateLimit, *rateBurst))
		log.Printf("rate limit: %.3g req/s per client (burst %.3g)", *rateLimit, *rateBurst)
	}
	if *pprofOn {
		handlerOpts = append(handlerOpts, server.WithPprof())
		log.Printf("pprof: serving /debug/pprof/")
	}

	handler := server.NewHandler(srv, handlerOpts...)
	if jnl != nil {
		// Every journaled daemon ships its journal: the replication
		// endpoints are mounted whether or not a standby exists yet, so one
		// can join without a primary restart.
		lease := *leaseFlag
		if lease < 0 {
			lease = *failoverTO / 2
		}
		if lease > 0 && *failoverTO > 0 && lease >= *failoverTO {
			return fmt.Errorf("-lease (%s) must be shorter than -failover-timeout (%s): a standby must outwait the primary's lease before promoting", lease, *failoverTO)
		}
		node = replica.NewNode(srv, jnl, replica.Config{
			Self:            *advertise,
			PrimaryURL:      *replicaOf,
			FailoverTimeout: *failoverTO,
			Lease:           lease,
			Logf:            log.Printf,
		})
		handler = node.FrontHandler(handler)
		if lease > 0 {
			log.Printf("replica: lease fencing on (a primary unpolled for %s refuses mutations)", lease)
		}
		if *replicaOf != "" {
			log.Printf("replica: following %s (failover after %s without a primary, 0 = manual)", *replicaOf, *failoverTO)
			go func() {
				if err := node.Run(context.Background()); err != nil {
					log.Printf("replica: follower loop exited: %v", err)
				}
			}()
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHdrTO,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderByte,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	log.Printf("shutting down (budget %s)", *drain)

	if node != nil {
		node.Stop() // halt the follower loop before the drain
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("command-loop drain: %w", err)
	}
	// The drain guarantees no more appends; the deferred jnl.Close syncs
	// the final segment.
	log.Printf("drained %d commands, bye", srv.Processed())
	return nil
}

// shardMeta pins a sharded data directory to the topology, admission config
// AND shard count that produced its journals. The partition is derived
// deterministically from (topology, shards), so changing any of these makes
// every shard journal meaningless.
type shardMeta struct {
	dataMeta
	Shards int `json:"shards"`
}

// checkShardMeta writes coordinator.json on first use and verifies it on
// every restart. The single-plane meta.json is untouched: a directory is
// either a single-plane or a sharded deployment, never both.
func checkShardMeta(dir string, want shardMeta) error {
	path := filepath.Join(dir, "coordinator.json")
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if _, merr := os.Stat(filepath.Join(dir, "meta.json")); merr == nil {
			return fmt.Errorf("data dir %s holds a single-plane journal (meta.json); "+
				"a sharded daemon needs a fresh directory", dir)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		b, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var have shardMeta
	if err := json.Unmarshal(raw, &have); err != nil {
		return fmt.Errorf("data dir %s: unreadable coordinator.json: %w", dir, err)
	}
	if have != want {
		return fmt.Errorf("data dir %s was written under config %+v, but this process started with %+v — "+
			"shard journals are only valid against the identical topology, admission config and shard count; "+
			"fix the flags or point -data-dir at a fresh directory", dir, have, want)
	}
	return nil
}

// shardedConfig carries the parsed flags into the sharded boot path.
type shardedConfig struct {
	addr    string
	drain   time.Duration
	graph   *topology.Graph
	shards  int
	dataDir string
	meta    dataMeta
	manager manager.Config
	journal journal.Options
	server  server.Options

	rateLimit, rateBurst float64
	maxBodyBytes         int64
	readTimeout          time.Duration
	readHdrTO            time.Duration
	idleTimeout          time.Duration
	maxHeaderByte        int

	forecastOn bool
	pprofOn    bool
}

// runSharded boots the partitioned admission plane: one manager + actor
// loop + journal per region shard behind the coordinator's global API.
func runSharded(cfg shardedConfig) error {
	if cfg.forecastOn {
		log.Printf("forecast: -forecast-interval is ignored with -shards > 1 (the live model is per-plane)")
	}
	if cfg.pprofOn {
		log.Printf("pprof: -pprof is ignored with -shards > 1")
	}
	if cfg.dataDir != "" {
		if err := checkShardMeta(cfg.dataDir, shardMeta{dataMeta: cfg.meta, Shards: cfg.shards}); err != nil {
			return err
		}
	}
	cfg.server.OnDegrade = func(reason string) {
		log.Printf("DEGRADED shard: %s — that shard refuses mutations (cross-shard transactions touching it abort), reads stay live", reason)
	}
	cfg.server.OnRecover = func(seq uint64) {
		log.Printf("RECOVERED shard: rebuilt from its journal to seq %d", seq)
	}
	cfg.server.OnOverload = func(on bool) {
		if on {
			log.Printf("OVERLOADED shard: shedding new establishes and prepares on that shard with 503")
		} else {
			log.Printf("shard overload cleared, admitting establishes again")
		}
	}
	c, err := shard.New(cfg.graph, shard.Options{
		Shards:  cfg.shards,
		Dir:     cfg.dataDir,
		Manager: cfg.manager,
		Server:  cfg.server,
		Journal: cfg.journal,
	})
	if err != nil {
		return fmt.Errorf("sharded boot: %w", err)
	}
	plan := c.Plan()
	log.Printf("sharded: %d shards over %d regions (%d nodes, %d links), journals under %s",
		plan.Shards, plan.Regions, cfg.graph.NumNodes(), cfg.graph.NumLinks(), dirLabel(cfg.dataDir))

	handlerOpts := []shard.HandlerOption{shard.WithMaxBodyBytes(cfg.maxBodyBytes)}
	if cfg.rateLimit > 0 {
		handlerOpts = append(handlerOpts, shard.WithRateLimit(cfg.rateLimit, cfg.rateBurst))
		log.Printf("rate limit: %.3g req/s per client (burst %.3g)", cfg.rateLimit, cfg.rateBurst)
	}
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           shard.NewHandler(c, handlerOpts...),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHdrTO,
		IdleTimeout:       cfg.idleTimeout,
		MaxHeaderBytes:    cfg.maxHeaderByte,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", cfg.addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down %d shards (budget %s)", cfg.shards, cfg.drain)

	shCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	if err := c.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shard drain: %w", err)
	}
	log.Printf("all shards drained, bye")
	return nil
}

// dirLabel names the durability root for log lines.
func dirLabel(dir string) string {
	if dir == "" {
		return "(in-memory)"
	}
	return dir
}
