// Command drserverd runs the DR-connection admission service as an HTTP
// daemon: it generates a topology, wraps the elastic-QoS manager in the
// internal/server actor loop, and serves the JSON API until SIGINT/SIGTERM,
// then shuts down gracefully (HTTP first, then the command loop drains).
//
//	drserverd -addr :8080 -nodes 100 -seed 1
//
// Endpoints: POST /v1/connections, DELETE /v1/connections/{id},
// POST /v1/faults/link, GET /v1/stats, GET /v1/invariants, GET /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drqos/internal/core"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drserverd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		kind     = flag.String("kind", "waxman", "topology: waxman or tier")
		nodes    = flag.Int("nodes", 100, "node count (waxman)")
		seed     = flag.Uint64("seed", 1, "topology seed")
		capacity = flag.Int64("capacity", int64(core.PaperCapacity), "link capacity per direction (Kbps)")
		policy   = flag.String("policy", "coefficient", "adaptation policy: coefficient or max-utility")
		noBackup = flag.Bool("no-require-backup", false, "accept unprotectable connections")
		noMux    = flag.Bool("no-multiplex", false, "disable backup multiplexing")
		queue    = flag.Int("queue", 256, "actor command-queue depth")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget")
	)
	flag.Parse()

	pol, err := qos.PolicyByName(*policy)
	if err != nil {
		return err
	}
	k := core.TopologyWaxman
	if *kind == "tier" {
		k = core.TopologyTransitStub
	} else if *kind != "waxman" {
		return fmt.Errorf("unknown kind %q", *kind)
	}
	sys, err := core.NewSystem(core.Options{Seed: *seed, Kind: k, Nodes: *nodes})
	if err != nil {
		return err
	}
	m := sys.Metrics()
	log.Printf("topology: %d nodes, %d links, diameter %d, avg hops %.2f (seed %d)",
		m.Nodes, m.Edges, m.Diameter, m.AvgHops, *seed)

	srv, err := server.New(sys.Graph(), manager.Config{
		Capacity:                  qos.Kbps(*capacity),
		Policy:                    pol,
		RequireBackup:             !*noBackup,
		DisableBackupMultiplexing: *noMux,
	}, server.Options{
		QueueDepth: *queue,
		OnDegrade: func(reason string) {
			log.Printf("DEGRADED: %s — refusing mutations, still serving reads; restart to recover", reason)
		},
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: server.NewHandler(srv)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	log.Printf("shutting down (budget %s)", *drain)

	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("command-loop drain: %w", err)
	}
	log.Printf("drained %d commands, bye", srv.Processed())
	return nil
}
