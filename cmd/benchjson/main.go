// Command benchjson converts `go test -bench -benchmem` output into the
// BENCH_<date>.json format and diffs two such files for regressions. It is
// the back end of scripts/bench.sh.
//
// Record a run (stdin -> JSON on stdout):
//
//	go test -bench . -benchmem ./... | benchjson -date 2026-08-05 > BENCH_2026-08-05.json
//
// Compare two runs (exit 1 if any ns/op, B/op or allocs/op grew >10%):
//
//	benchjson -compare BENCH_old.json BENCH_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"drqos/internal/benchparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		compare   = flag.Bool("compare", false, "compare two BENCH json files given as arguments instead of reading bench output from stdin")
		threshold = flag.Float64("threshold", 0.10, "relative growth in ns/op, B/op or allocs/op that counts as a regression")
		date      = flag.String("date", "", "run date stamped into the report (default: today)")
		host      = flag.String("host", "", "host label stamped into the report")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two files: old.json new.json")
		}
		return compareFiles(flag.Arg(0), flag.Arg(1), *threshold)
	}
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (use -compare to diff files)", flag.Args())
	}

	rep, err := benchparse.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	rep.Date = *date
	if rep.Date == "" {
		rep.Date = time.Now().Format("2006-01-02")
	}
	rep.GoVersion = runtime.Version()
	rep.Host = *host
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func compareFiles(oldPath, newPath string, threshold float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	regs := benchparse.Compare(oldRep, newRep, threshold)
	if len(regs) == 0 {
		fmt.Printf("no regressions >%g%% (%s -> %s, %d benchmarks compared)\n",
			threshold*100, oldRep.Date, newRep.Date, len(newRep.Results))
		return nil
	}
	fmt.Printf("%d regression(s) >%g%%:\n", len(regs), threshold*100)
	for _, r := range regs {
		fmt.Printf("  %s\n", r)
	}
	os.Exit(1)
	return nil
}

func loadReport(path string) (*benchparse.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchparse.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
