// Command experiments regenerates the paper's tables and figures plus the
// reproduction's ablations, printing each as a text table.
//
// Examples:
//
//	experiments -run all -scale quick
//	experiments -run fig2,fig4 -scale full -seed 2001
//	experiments -run all -scale full -parallel 8
//	experiments -run fig2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"drqos/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runList    = flag.String("run", "all", "comma-separated: fig2,table1,fig3,fig4,ablationA..E,coverage,variability or all")
		scale      = flag.String("scale", "quick", "quick or full")
		seed       = flag.Uint64("seed", 2001, "experiment seed")
		datDir     = flag.String("dat", "", "also write gnuplot .dat files and plots.gp into this directory")
		parallel   = flag.Int("parallel", 0, "sweep-point workers per experiment (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
			f.Close()
		}()
	}

	cfg := experiments.Config{Seed: *seed, Workers: *parallel}
	switch *scale {
	case "quick":
		cfg.Scale = experiments.ScaleQuick
	case "full":
		cfg.Scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	type renderer interface{ Render(io.Writer) error }
	runners := map[string]func() (renderer, error){
		"fig2":        func() (renderer, error) { return experiments.Fig2(cfg) },
		"table1":      func() (renderer, error) { return experiments.Table1(cfg) },
		"fig3":        func() (renderer, error) { return experiments.Fig3(cfg) },
		"fig4":        func() (renderer, error) { return experiments.Fig4(cfg) },
		"ablationA":   func() (renderer, error) { return experiments.AblationA(cfg) },
		"ablationB":   func() (renderer, error) { return experiments.AblationB(cfg) },
		"ablationC":   func() (renderer, error) { return experiments.AblationC(cfg) },
		"ablationD":   func() (renderer, error) { return experiments.AblationD(cfg) },
		"ablationE":   func() (renderer, error) { return experiments.AblationE(cfg) },
		"coverage":    func() (renderer, error) { return experiments.Coverage(cfg) },
		"variability": func() (renderer, error) { return experiments.Variability(cfg) },
	}
	order := []string{"fig2", "table1", "fig3", "fig4", "ablationA", "ablationB", "ablationC", "ablationD", "ablationE", "coverage", "variability"}

	selected := strings.Split(*runList, ",")
	if *runList == "all" {
		selected = order
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(order, ", "))
		}
		start := time.Now()
		res, err := runner()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("=== %s (%s scale, %s) ===\n", name, *scale, time.Since(start).Round(time.Millisecond))
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *datDir != "" {
			if dw, ok := res.(experiments.DatWriter); ok {
				if err := os.MkdirAll(*datDir, 0o755); err != nil {
					return err
				}
				if err := experiments.WriteDatFile(*datDir, name, dw); err != nil {
					return err
				}
			}
		}
	}
	if *datDir != "" {
		if err := os.WriteFile(filepath.Join(*datDir, "plots.gp"), []byte(experiments.GnuplotScript()), 0o644); err != nil {
			return err
		}
		fmt.Printf("gnuplot data written to %s (run: gnuplot plots.gp)\n", *datDir)
	}
	return nil
}
