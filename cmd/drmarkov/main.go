// Command drmarkov builds and solves the paper's Markov chain from a
// parameter file written by `drsim -params-out` (our SHARPE substitute). It
// prints the stationary distribution and the mean reserved bandwidth under
// the plain §3.2 chain and under the finite-lifetime (restart) extension.
//
// Example:
//
//	drsim -conns 3000 -params-out params.json
//	drmarkov -in params.json
package main

import (
	"flag"
	"fmt"
	"os"

	"drqos/internal/markov"
	"drqos/internal/modelio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drmarkov:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "parameter JSON written by drsim -params-out (required)")
		transient = flag.Float64("transient", 0, "also report the distribution at this time horizon")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := modelio.Read(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	spec := doc.Spec()

	chain, err := markov.Build(doc.Params)
	if err != nil {
		return err
	}
	fmt.Printf("chain: %d states, λ=%.6f μ=%.6f γ=%.6f Pf=%.4f Ps=%.4f\n",
		chain.N(), doc.Params.Lambda, doc.Params.Mu, doc.Params.Gamma,
		doc.Params.Pf, doc.Params.Ps)

	pi, err := chain.SteadyStateFrom(doc.BirthDist)
	if err != nil {
		return err
	}
	mean, err := markov.MeanBandwidth(pi, spec)
	if err != nil {
		return err
	}
	fmt.Printf("paper model:    pi=%s  mean=%.1f Kbps\n", fmtDist(pi), mean)

	if doc.Delta > 0 && len(doc.BirthDist) == chain.N() {
		rchain, err := chain.WithRestart(doc.BirthDist, doc.Delta)
		if err != nil {
			return err
		}
		rpi, err := rchain.SteadyStateFrom(doc.BirthDist)
		if err != nil {
			return err
		}
		rmean, err := markov.MeanBandwidth(rpi, spec)
		if err != nil {
			return err
		}
		fmt.Printf("restart model:  pi=%s  mean=%.1f Kbps (δ=%.2e)\n", fmtDist(rpi), rmean, doc.Delta)
	}

	if *transient > 0 {
		p0 := doc.BirthDist
		pt, err := chain.Transient(p0, *transient, 1e-10)
		if err != nil {
			return err
		}
		tmean, err := markov.MeanBandwidth(pt, spec)
		if err != nil {
			return err
		}
		fmt.Printf("transient t=%g: pi=%s  mean=%.1f Kbps\n", *transient, fmtDist(pt), tmean)
	}
	return nil
}

func fmtDist(pi []float64) string {
	out := "["
	for i, p := range pi {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", p)
	}
	return out + "]"
}
