// Command chaos soaks the DR-connection manager (and optionally the
// concurrent admission server) with seeded fault-injection episodes,
// auditing every invariant after every event. On the first failure it
// shrinks the trace to a minimal reproducer, prints it as a replayable Go
// literal, and exits 1 — paste the literal into a chaos.Replay regression
// test. Run under -race for the server mode to matter:
//
//	go run -race ./cmd/chaos -episodes 60 -events 120 -seed 1
//	go run -race ./cmd/chaos -server -episodes 10 -workers 8 -ops 200
//	go run ./cmd/chaos -crash -episodes 12 -events 150
//	go run -race ./cmd/chaos -overload -episodes 5
//
// -crash runs durability episodes instead: each journals an event stream,
// kills it mid-run (abandoning the journal without Close, sometimes with a
// torn half-written record appended), restarts from disk, and asserts the
// rebuilt state is bit-identical to a never-crashed reference before driving
// both through the rest of the episode.
//
// -overload runs overload-control episodes: the actor's service rate is
// artificially capped, closed-loop workers with tiny deadlines drown the
// consuming lane, and each episode asserts the server sheds expired work
// unexecuted, latches (and later clears) the overloaded state, keeps
// terminations live, never wedges and never degrades.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drqos/internal/chaos"
)

func main() {
	var (
		episodes    = flag.Int("episodes", 20, "number of seeded episodes")
		events      = flag.Int("events", 200, "events per manager episode")
		seed        = flag.Uint64("seed", 1, "first seed; episode i uses seed+i")
		nodes       = flag.Int("nodes", 24, "Waxman topology size")
		srv         = flag.Bool("server", false, "drive server.Server concurrently instead of the bare manager")
		workers     = flag.Int("workers", 8, "concurrent clients (with -server)")
		ops         = flag.Int("ops", 100, "operations per client (with -server)")
		crash       = flag.Bool("crash", false, "run crash-restart durability episodes instead")
		failover    = flag.Bool("failover", false, "run primary-kill failover episodes instead: a two-node replicated pair takes a mutation burst, the primary dies mid-burst, and the standby must promote sub-second with a bit-identical acked prefix, zero acked establishes lost, and a fenced rejoin")
		shardEp     = flag.Bool("shard", false, "run sharded mid-2PC kill episodes instead: one region shard dies between prepare and commit, survivors must abort cleanly and a full restart must replay every shard to the acknowledged prefix")
		partitionEp = flag.Bool("partition", false, "run network-partition episodes instead: nothing dies, the network lies — a replicated pair loses its link mid-burst (symmetric or asymmetric) and the lease fence must keep at most one side acking with zero acked loss, while a sharded plane times out a partitioned 2PC participant, fast-fails during suspicion, and drains every unresolved abort after the heal")
		overload    = flag.Bool("overload", false, "run overload-control episodes instead (deadline shedding, priority lanes, latch/recovery)")
		quiet       = flag.Bool("q", false, "only report failures")
	)
	flag.Parse()

	for i := 0; i < *episodes; i++ {
		if *partitionEp {
			if err := partitionEpisode(i, *seed+uint64(i), *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		if *shardEp {
			if err := shardEpisode(i, *seed+uint64(i), *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		if *crash {
			if err := crashEpisode(i, *seed+uint64(i), *events, *nodes, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		if *failover {
			if err := failoverEpisode(i, *seed+uint64(i), *nodes, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		s := *seed + uint64(i)
		if *overload {
			res, err := chaos.RunOverload(chaos.OverloadConfig{
				Seed: s, Nodes: *nodes, Workers: *workers, Ops: *ops,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: overload episode %d (seed %d): %v\n", i, s, err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Printf("overload episode %d ok (seed %d): ok=%d expired=%d terminated=%d shed=%d+%d latches=%d recovered_in=%s\n",
					i, s, res.EstablishOK, res.EstablishExpired, res.Terminated,
					res.ShedExpired, res.ShedCanceled, res.Episodes, res.RecoveredIn)
			}
			continue
		}
		if *srv {
			// Odd episodes fire a mid-burst shutdown so workers race the
			// closing command queue.
			var after int64
			if i%2 == 1 {
				after = int64(*workers) * int64(*ops) / 2
			}
			err := chaos.RunServer(chaos.ServerConfig{
				Seed: s, Nodes: *nodes, Workers: *workers, Ops: *ops, ShutdownAfter: after,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: server episode %d (seed %d): %v\n", i, s, err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Printf("server episode %d ok (seed %d, %d workers x %d ops, shutdown_after=%d)\n",
					i, s, *workers, *ops, after)
			}
			continue
		}
		cfg := chaos.Config{Seed: s, Events: *events, Nodes: *nodes}
		trace, fail, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: episode %d (seed %d): setup: %v\n", i, s, err)
			os.Exit(1)
		}
		if fail != nil {
			fmt.Fprintf(os.Stderr, "chaos: episode %d (seed %d) FAILED: %v\n", i, s, fail)
			min, mf, serr := chaos.Shrink(cfg, trace)
			if serr != nil {
				fmt.Fprintf(os.Stderr, "chaos: shrink: %v\n", serr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "shrunk to %d event(s), still failing with: %v\n", len(min), mf.Err)
			fmt.Fprintf(os.Stderr, "replay with chaos.Replay(chaos.Config{Seed: %d, Nodes: %d}, trace) where trace =\n%s\n",
				s, *nodes, chaos.FormatTrace(min))
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("episode %d ok (seed %d, %d events, final audit clean)\n", i, s, len(trace))
		}
	}
	fmt.Printf("chaos: %d episode(s) clean\n", *episodes)
}

// crashEpisode runs one crash-restart durability episode in a throwaway data
// dir, varying the crash point, snapshot cadence and tail damage with the
// episode index so a default run covers the recovery matrix.
func crashEpisode(i int, seed uint64, events, nodes int, quiet bool) error {
	dir, err := os.MkdirTemp("", "drqos-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := chaos.CrashConfig{
		Seed:   seed,
		Events: events,
		Nodes:  nodes,
		Dir:    dir,
		// Crash sweeps from almost-immediately to almost-done.
		CrashAfter:    1 + (i*events/7)%(events-1),
		SnapshotEvery: []int{-1, 4, 16, 64}[i%4],
		TornTailBytes: []int{0, 0, 23, 0, 200, 1}[i%6],
		// Alternate group-commit mode so half the episodes crash inside the
		// commit window (framed-but-unacknowledged appends lost mid-batch).
		GroupCommit:   i%2 == 1,
		UnackedWindow: []int{0, 3, 0, 9}[i%4],
	}
	res, err := chaos.RunCrashRestart(cfg)
	if err != nil {
		return fmt.Errorf("crash episode %d (seed %d, crash_after=%d snapshot_every=%d torn=%d): %w",
			i, seed, cfg.CrashAfter, cfg.SnapshotEvery, cfg.TornTailBytes, err)
	}
	if !quiet {
		fmt.Printf("crash episode %d ok (seed %d, crash_after=%d, journaled=%d, snapshot_seq=%d, torn=%dB, group_commit=%v, unacked_lost=%d, fp=%.12s)\n",
			i, seed, cfg.CrashAfter, res.Journaled, res.SnapshotSeq, res.TornBytes, cfg.GroupCommit, res.UnackedLost, res.Fingerprint)
	}
	return nil
}

// failoverEpisode runs one primary-kill replication episode in a throwaway
// data dir, varying the kill point with the episode index.
func failoverEpisode(i int, seed uint64, nodes int, quiet bool) error {
	dir, err := os.MkdirTemp("", "drqos-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := chaos.RunFailover(chaos.FailoverConfig{
		Seed: seed, Nodes: nodes, Dir: dir,
		KillAfter: 10 + (i*13)%40,
	})
	if err != nil {
		return fmt.Errorf("failover episode %d (seed %d): %w", i, seed, err)
	}
	if !quiet {
		fmt.Printf("failover episode %d ok (seed %d): acked=%d prefix=%d promotion=%s term=%d diverged_rejoin=%v fp=%.12s\n",
			i, seed, res.AckedPreKill, res.ReplicatedPrefix, res.PromotionLatency, res.NewTerm, res.RejoinDiverged, res.Fingerprint)
	}
	return nil
}

// partitionEpisode runs one network-partition episode in a throwaway data
// dir. The seed picks the partition shapes (symmetric / request-drop /
// response-drop on the replica pair, request- or response-drop on the 2PC
// victim), so consecutive seeds sweep the shape matrix.
func partitionEpisode(i int, seed uint64, quiet bool) error {
	dir, err := os.MkdirTemp("", "drqos-partition-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := chaos.RunPartition(chaos.PartitionConfig{Seed: seed, Dir: dir})
	if err != nil {
		return fmt.Errorf("partition episode %d (seed %d): %w", i, seed, err)
	}
	if !quiet {
		fmt.Printf("partition episode %d ok (seed %d): mode=%s acked=%d fence=%s promotion=%s | shard mode=%s victim=%d timeouts=%d fast_fail=%s pending=%d\n",
			i, seed, res.Mode, res.AckedPrePartition, res.FenceLatency.Round(time.Millisecond),
			res.PromotionLatency.Round(time.Millisecond), res.ShardMode, res.Victim,
			res.CrossTimeouts, res.FastFail.Round(time.Microsecond), res.PendingPeak)
	}
	return nil
}

// shardEpisode runs one sharded mid-2PC kill episode in a throwaway data
// dir, varying the topology with the episode index so a default run covers
// several partitions.
func shardEpisode(i int, seed uint64, quiet bool) error {
	dir, err := os.MkdirTemp("", "drqos-shard-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := chaos.RunShardCrash(chaos.ShardCrashConfig{
		Seed: seed, TopoSeed: seed + 100, Dir: dir,
	})
	if err != nil {
		return fmt.Errorf("shard episode %d (seed %d): %w", i, seed, err)
	}
	if !quiet {
		fmt.Printf("shard episode %d ok (seed %d): %d shards, victim %d, %d pre-crash conns, %d cross alive, replay bit-identical\n",
			i, seed, res.Shards, res.Victim, res.Established, res.CrossAlive)
	}
	return nil
}
