// Command drtrace summarizes a JSONL event trace written by
// `drsim -trace`: event counts, population and bandwidth trajectories, and
// per-failure impact statistics.
//
// Example:
//
//	drsim -conns 2000 -gamma 1e-4 -trace trace.jsonl
//	drtrace -in trace.jsonl -buckets 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"drqos/internal/sim"
	"drqos/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "trace file written by drsim -trace (required)")
		buckets = flag.Int("buckets", 10, "number of time buckets in the trajectory table")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	if *buckets < 1 {
		return fmt.Errorf("need at least 1 bucket")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var events []sim.TraceEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var ev sim.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}

	counts := map[string]int{}
	var failureImpact stats.Running
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == "failure" {
			failureImpact.Observe(float64(ev.Activated + ev.Dropped))
		}
	}
	fmt.Printf("events: %d total", len(events))
	for _, k := range []string{"arrival", "reject", "termination", "failure", "repair"} {
		if counts[k] > 0 {
			fmt.Printf("  %s=%d", k, counts[k])
		}
	}
	fmt.Println()
	if failureImpact.N() > 0 {
		fmt.Printf("failure impact: %.2f affected connections per failure (max %.0f over %d failures)\n",
			failureImpact.Mean(), failureImpact.Max(), failureImpact.N())
	}

	start, end := events[0].T, events[len(events)-1].T
	if end <= start {
		fmt.Println("trajectory: trace covers a single instant; skipping buckets")
		return nil
	}
	fmt.Printf("\n%-12s %-8s %-10s\n", "t", "alive", "avg bw")
	width := (end - start) / float64(*buckets)
	idx := 0
	for b := 0; b < *buckets; b++ {
		cut := start + float64(b+1)*width
		var last *sim.TraceEvent
		for idx < len(events) && events[idx].T <= cut {
			last = &events[idx]
			idx++
		}
		if last == nil {
			continue
		}
		fmt.Printf("%-12.1f %-8d %-10.1f\n", last.T, last.Alive, last.AvgBandwidth)
	}
	return nil
}
