package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"time"

	"drqos/internal/server"
)

// The -forecast probe rides along a normal closed-loop run: a background
// goroutine polls GET /v1/forecast while the workers drive load, and the
// final digest compares the model-predicted mean bandwidth against the
// measured one. With -forecast-max-rel-err > 0 the comparison becomes a
// gate: the run exits non-zero when the model misses by more than the
// bound (the --forecast CI smoke passes 0.10 per the paper's ~10%
// model-vs-simulation agreement).
var (
	forecastOn = flag.Bool("forecast", false,
		"poll GET /v1/forecast during the run and report model-predicted vs measured mean bandwidth in the digest")
	forecastPollEvery = flag.Duration("forecast-poll", time.Second,
		"forecast poll cadence while the run is active")
	forecastMaxRelErr = flag.Float64("forecast-max-rel-err", 0,
		"fail the run when |predicted-measured|/measured exceeds this bound (0 = report only)")
)

// forecastProbe polls the forecast and stats endpoints in the background.
type forecastProbe struct {
	client *http.Client
	addr   string
	stop   chan struct{}
	done   chan struct{}

	polls       int
	unavailable int
	stalePolls  int
	last        *server.ForecastEnvelope // last available envelope

	// Population-weighted running average of the measured per-channel
	// bandwidth: Σ avg_bw(t)·alive(t) / Σ alive(t) over the poll samples.
	// This is the measured counterpart of the model's steady-state mean —
	// both cover the whole run, so a ramping population biases neither
	// side. The final instantaneous average would compare a whole-window
	// estimate against a single end-of-run instant.
	bwWeighted float64
	bwWeight   float64
}

func startForecastProbe(client *http.Client, addr string, every time.Duration) *forecastProbe {
	if every <= 0 {
		every = time.Second
	}
	p := &forecastProbe{
		client: client, addr: addr,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.poll()
			}
		}
	}()
	return p
}

// poll fetches one forecast + measurement sample. Only the probe goroutine
// (and, after halt, the reporter) touches the fields.
func (p *forecastProbe) poll() {
	var st server.Stats
	if code, _, _, err := doJSON(p.client, "GET", p.addr+"/v1/stats", nil, &st); err == nil && code == http.StatusOK && st.Alive > 0 {
		p.bwWeighted += st.AvgBandwidthKbps * float64(st.Alive)
		p.bwWeight += float64(st.Alive)
	}
	var env server.ForecastEnvelope
	code, _, _, err := doJSON(p.client, "GET", p.addr+"/v1/forecast", nil, &env)
	p.polls++
	if err != nil || code != http.StatusOK || !env.Available {
		p.unavailable++
		return
	}
	if env.Forecast != nil && env.Forecast.Stale {
		p.stalePolls++
	}
	p.last = &env
}

// halt stops the background poller and waits for it.
func (p *forecastProbe) halt() {
	close(p.stop)
	<-p.done
}

// report takes one final sample, prints the model-vs-measured digest line
// and applies the relative-error gate. finalBW is the server's average
// reserved bandwidth at run end, used as a fallback when too few poll
// samples accumulated to form the windowed measurement.
func (p *forecastProbe) report(finalBW float64, maxRel float64) error {
	p.poll()
	if p.last == nil {
		fmt.Printf("forecast: never available over %d polls\n", p.polls)
		if maxRel > 0 {
			return fmt.Errorf("forecast gate: no forecast became available over %d polls", p.polls)
		}
		return nil
	}
	measured := finalBW
	if p.bwWeight > 0 {
		measured = p.bwWeighted / p.bwWeight
	}
	f := p.last.Forecast
	absErr := math.Abs(f.MeanBandwidthKbps - measured)
	relErr := math.Inf(1)
	if measured > 0 {
		relErr = absErr / measured
	}
	staleNote := ""
	if f.Stale {
		staleNote = fmt.Sprintf(" STALE(%s)", f.LastError)
	}
	fmt.Printf("forecast: predicted_mean=%.1fKbps measured_mean=%.1fKbps (final=%.1fKbps) abs_err=%.1fKbps rel_err=%.1f%%%s\n",
		f.MeanBandwidthKbps, measured, finalBW, absErr, 100*relErr, staleNote)
	fmt.Printf("forecast: λ=%.2f/s μ=%.2f/s γ=%.3f/s Pf=%.3f Ps=%.3f δ=%.4f/s avg_alive=%.1f discarded=(%.3f,%.3f,%.3f)\n",
		f.Lambda, f.Mu, f.Gamma, f.Pf, f.Ps, f.Delta, f.AvgAlive, f.DiscardedA, f.DiscardedB, f.DiscardedT)
	fmt.Printf("forecast: polls=%d unavailable=%d stale_polls=%d solves=%d solve_errors=%d age=%.1fs\n",
		p.polls, p.unavailable, p.stalePolls, f.Solves, f.SolveErrors, p.last.AgeSeconds)
	if maxRel > 0 {
		if measured <= 0 {
			return fmt.Errorf("forecast gate: no measured bandwidth to compare against (no alive connections at run end)")
		}
		if relErr > maxRel {
			return fmt.Errorf("forecast gate: relative error %.1f%% exceeds the %.1f%% bound",
				100*relErr, 100*maxRel)
		}
		fmt.Printf("forecast gate: rel_err %.1f%% within %.1f%% bound\n", 100*relErr, 100*maxRel)
	}
	return nil
}
