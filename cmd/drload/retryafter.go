// Retry-After parsing. RFC 9110 §10.2.3 allows two forms — delay-seconds
// ("120") and an HTTP-date ("Fri, 07 Aug 2026 11:23:05 GMT"). drload used to
// parse only the integer form, so date-form hints silently fell through to
// generic backoff and were never counted in honored_hints.
package main

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// parseRetryAfter interprets a Retry-After header value as either
// delay-seconds or an HTTP-date (any of the three formats http.ParseTime
// accepts). It reports the wait duration — clamped at zero for dates
// already past — and whether the value was a well-formed hint at all.
// Negative delay-seconds and garbage are not hints.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
