package main

import (
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 9110 forms — delay-seconds and
// HTTP-date (all three formats http.ParseTime accepts) — plus the
// non-hints: garbage, empty, negative seconds. Before the fix only the
// integer form parsed; date-form hints fell through to generic backoff and
// were never counted in honored_hints.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 7, 11, 23, 5, 0, time.UTC)
	cases := []struct {
		name   string
		value  string
		want   time.Duration
		hinted bool
	}{
		{"seconds", "120", 120 * time.Second, true},
		{"seconds-zero", "0", 0, true},
		{"seconds-padded", "  5 ", 5 * time.Second, true},
		{"seconds-negative", "-3", 0, false},
		{"http-date-future", "Fri, 07 Aug 2026 11:24:05 GMT", time.Minute, true},
		{"http-date-past", "Fri, 07 Aug 2026 11:22:05 GMT", 0, true},
		{"http-date-rfc850", "Friday, 07-Aug-26 11:23:35 GMT", 30 * time.Second, true},
		{"http-date-asctime", "Fri Aug  7 11:23:35 2026", 30 * time.Second, true},
		{"garbage", "soon", 0, false},
		{"empty", "", 0, false},
		{"fractional", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, hinted := parseRetryAfter(tc.value, now)
			if got != tc.want || hinted != tc.hinted {
				t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)",
					tc.value, got, hinted, tc.want, tc.hinted)
			}
		})
	}
}
