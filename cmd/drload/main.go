// Command drload is a closed-loop load generator for drserverd: K worker
// goroutines replay a randomized arrival/termination/fault mix against the
// daemon's JSON API and report throughput, outcome counts and streaming
// latency percentiles (p50/p90/p99 via the P² estimator in internal/stats).
// Transport failures, 503s (a degraded or overloaded server shedding
// mutations) and 429s (per-client rate limit) are retried with capped
// exponential backoff and jitter — honoring the server's Retry-After hint
// when one is sent; retries, honored hints and give-ups are reported
// separately from hard errors in the digest. After the run it asks the
// server to audit its ledger (GET /v1/invariants) and exits non-zero on any
// transport error, unexpected status, or a dirty invariant check.
//
//	drserverd -addr :8080 &
//	drload -addr http://127.0.0.1:8080 -workers 8 -requests 10000
//
// With -overload it instead runs the sustained over-capacity burst drill
// (see overload.go): calibrate the closed-loop rate, burst open-loop at a
// multiple of it, and gate on the server shedding, keeping reads fast, and
// returning to ready.
//
// With -bench-json FILE the run's end-to-end throughput and latency
// percentiles are merged into a benchparse JSON report (see benchjson.go),
// comparable with scripts/bench.sh --compare.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drload:", err)
		os.Exit(1)
	}
}

type counters struct {
	established atomic.Int64
	rejected    atomic.Int64
	terminated  atomic.Int64
	gone        atomic.Int64 // terminate hit a connection a fault already dropped
	failed      atomic.Int64
	repaired    atomic.Int64
	conflicts   atomic.Int64 // fault raced another worker's fault
	retries     atomic.Int64 // re-issued after a transport error, 503 or 429
	hints       atomic.Int64 // retries that honored a server Retry-After hint
	giveups     atomic.Int64 // retry budget exhausted
	failovers   atomic.Int64 // requests that succeeded after ≥1 transport-error retry
	errors      atomic.Int64
}

type latencies struct {
	mu sync.Mutex
	d  *stats.Digest
}

func (l *latencies) observe(seconds float64) {
	l.mu.Lock()
	l.d.Observe(seconds)
	l.mu.Unlock()
}

func run() error {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "drserverd base URL, or a comma-separated list of replica endpoints; on a transport failure a worker rotates to the next endpoint (requests that then succeed count as failovers_survived)")
		workers   = flag.Int("workers", 8, "concurrent closed-loop workers")
		requests  = flag.Int64("requests", 10000, "total HTTP requests to issue")
		seed      = flag.Uint64("seed", 1, "workload seed")
		termFrac  = flag.Float64("terminate-frac", 0.35, "probability an op terminates an owned connection")
		faultFrac = flag.Float64("fault-frac", 0.004, "probability an op injects/repairs a link fault")
		minBW     = flag.Int64("min", 0, "elastic minimum (Kbps, 0 = server default spec)")
		maxBW     = flag.Int64("max", 0, "elastic maximum (Kbps)")
		inc       = flag.Int64("inc", 0, "elastic increment (Kbps)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		retries   = flag.Int("retries", 4, "retry budget per request for transport errors and 503s (0 disables)")
		retryBase = flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt, with jitter)")
		retryMax  = flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
	)
	flag.Parse()
	if *workers <= 0 || *requests <= 0 {
		return fmt.Errorf("workers (%d) and requests (%d) must be positive", *workers, *requests)
	}
	var endpoints []string
	for _, e := range strings.Split(*addr, ",") {
		if e = strings.TrimSuffix(strings.TrimSpace(e), "/"); e != "" {
			endpoints = append(endpoints, e)
		}
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("-addr %q holds no endpoint", *addr)
	}
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	// Probes and reports target the first live endpoint — the list may
	// deliberately lead with a dead primary in a failover drill. A follower
	// there redirects mutations to the primary (doJSON bodies are
	// replayable, so the default client follows the 307), and reads are
	// served anywhere.
	*addr = endpoints[0]
	for _, e := range endpoints {
		if _, _, _, err := doJSON(client, "GET", e+"/healthz", nil, nil); err == nil {
			*addr = e
			break
		}
	}

	// Discover the topology once so workers can draw endpoints and links.
	// A sharded daemon answers GET /v1/shards and wraps its stats in an
	// aggregate; an unsharded one 404s the probe and serves Stats bare.
	sv, err := fetchShardView(client, *addr)
	if err != nil {
		return fmt.Errorf("shard probe (is drserverd running at %s?): %w", *addr, err)
	}
	var st server.Stats
	if err := fetchStats(client, *addr, sv, &st); err != nil {
		return fmt.Errorf("initial stats: %w", err)
	}
	if sv != nil {
		fmt.Printf("target: %s — %d nodes, %d links, capacity %d Kbps, %d shards\n",
			*addr, st.Nodes, st.Links, st.CapacityKbps, sv.shards)
		if *crossFrac >= 0 {
			fmt.Printf("workload: shard-aware pairs, cross-frac=%.3g\n", *crossFrac)
		}
	} else {
		fmt.Printf("target: %s — %d nodes, %d links, capacity %d Kbps\n",
			*addr, st.Nodes, st.Links, st.CapacityKbps)
		if *crossFrac >= 0 {
			fmt.Printf("note: -cross-frac ignored, daemon is not sharded\n")
		}
	}

	if *overloadMode {
		return runOverload(client, *addr, st, *seed)
	}

	var probe *forecastProbe
	if *forecastOn {
		probe = startForecastProbe(client, *addr, *forecastPollEvery)
	}

	var (
		cnt    counters
		lat    = &latencies{d: stats.NewDigest()}
		issued atomic.Int64
		wg     sync.WaitGroup
		msgs   = make(chan string, *workers) // first error per worker
		wks    = make([]*worker, *workers)
	)
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := &worker{
				id: w, client: client, endpoints: endpoints,
				src: rng.New(*seed + uint64(w)*0x9e3779b97f4a7c15),
				// Jitter draws come from a separate stream so retries do
				// not perturb the deterministic operation mix.
				jit:   rng.New(*seed ^ 0xdead0000 + uint64(w)),
				nodes: st.Nodes, links: st.Links,
				termFrac: *termFrac, faultFrac: *faultFrac,
				minBW: *minBW, maxBW: *maxBW, inc: *inc,
				retries: *retries, retryBase: *retryBase, retryMax: *retryMax,
				cnt: &cnt, lat: lat,
				failedLink: -1,
				view:       sv, crossFrac: *crossFrac,
				ledger: make(map[int64]string),
			}
			wks[w] = wk
			for issued.Add(1) <= *requests {
				if err := wk.step(); err != nil {
					if cnt.errors.Add(1) <= int64(cap(msgs)) {
						select {
						case msgs <- err.Error():
						default:
						}
					}
				}
			}
			// Repair an outstanding fault (uncounted) so the run leaves
			// the topology intact.
			if wk.failedLink >= 0 {
				_ = wk.fault()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(msgs)

	fmt.Printf("\n%d requests in %.2fs — %.0f req/s over %d workers\n",
		*requests, elapsed.Seconds(), float64(*requests)/elapsed.Seconds(), *workers)
	fmt.Printf("outcomes: established=%d rejected=%d terminated=%d gone=%d failed=%d repaired=%d conflicts=%d errors=%d\n",
		cnt.established.Load(), cnt.rejected.Load(), cnt.terminated.Load(), cnt.gone.Load(),
		cnt.failed.Load(), cnt.repaired.Load(), cnt.conflicts.Load(), cnt.errors.Load())
	fmt.Printf("resilience: retries=%d honored_hints=%d giveups=%d failovers_survived=%d\n",
		cnt.retries.Load(), cnt.hints.Load(), cnt.giveups.Load(), cnt.failovers.Load())
	d := lat.d
	// An empty digest reports NaN quantiles; render "n/a" instead of a
	// bogus 0.00ms (Mean/Max return 0 when empty, equally misleading).
	ms := func(seconds float64) string {
		if d.N() == 0 || math.IsNaN(seconds) {
			return "n/a"
		}
		return fmt.Sprintf("%.2fms", seconds*1e3)
	}
	fmt.Printf("latency: mean=%s p50=%s p90=%s p99=%s max=%s (n=%d)\n",
		ms(d.Mean()), ms(d.P50()), ms(d.P90()), ms(d.P99()), ms(d.Max()), d.N())
	if *benchJSON != "" {
		rec := benchRecord(*requests, elapsed, *workers, d)
		if err := writeBenchRecord(*benchJSON, rec); err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		fmt.Printf("bench record: %s merged into %s (%.0f req/s)\n", rec.Key(), *benchJSON, rec.Metrics["rps"])
	}
	for m := range msgs {
		fmt.Printf("first errors: %s\n", m)
	}

	// After a failover drill the first endpoint may be dead; report from
	// the first one that still answers.
	reportAddr := *addr
	for _, e := range endpoints {
		if _, _, _, err := doJSON(client, "GET", e+"/healthz", nil, nil); err == nil {
			reportAddr = e
			break
		}
	}
	if err := fetchStats(client, reportAddr, sv, &st); err != nil {
		return fmt.Errorf("final stats: %w", err)
	}
	fmt.Printf("server: alive=%d unprotected=%d avg_bw=%.1fKbps reject_rate=%.3f failed_links=%v\n",
		st.Alive, st.Unprotected, st.AvgBandwidthKbps, st.RejectRate, st.FailedLinks)

	if probe != nil {
		probe.halt()
		if err := probe.report(st.AvgBandwidthKbps, *forecastMaxRelErr); err != nil {
			return err
		}
	}

	var inv struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if _, _, _, err := doJSON(client, "GET", reportAddr+"/v1/invariants", nil, &inv); err != nil {
		return fmt.Errorf("invariant check: %w", err)
	}
	if !inv.OK {
		return fmt.Errorf("server invariants dirty: %s", inv.Error)
	}
	fmt.Println("server invariants: clean")

	// Acked-write durability audit: every establish the server acknowledged
	// (and the run did not terminate) must still be alive on the surviving
	// endpoint. Only meaningful with no link faults (a fault legitimately
	// drops connections without telling their owner) and more than one
	// endpoint (the single-endpoint case has nothing to fail over to).
	if *faultFrac == 0 && len(endpoints) > 1 {
		verified, lost := 0, 0
		var lostSample []string
		for _, wk := range wks {
			for id, rid := range wk.ledger {
				var cs struct {
					Alive bool `json:"alive"`
				}
				code, _, _, err := doJSON(client, "GET", reportAddr+fmt.Sprintf("/v1/connections/%d", id), nil, &cs)
				if err != nil { // one retry on a transient transport error
					code, _, _, err = doJSON(client, "GET", reportAddr+fmt.Sprintf("/v1/connections/%d", id), nil, &cs)
				}
				if err == nil && code == http.StatusOK && cs.Alive {
					verified++
					continue
				}
				lost++
				if len(lostSample) < 5 {
					lostSample = append(lostSample, fmt.Sprintf("conn %d (request %s, status %d, err %v)", id, rid, code, err))
				}
			}
		}
		fmt.Printf("acked ledger: verified=%d acked_lost=%d\n", verified, lost)
		if lost > 0 {
			for _, s := range lostSample {
				fmt.Printf("acked_lost: %s\n", s)
			}
			return fmt.Errorf("%d acknowledged connections lost", lost)
		}
	}
	if n := cnt.errors.Load(); n > 0 {
		return fmt.Errorf("%d request errors", n)
	}
	return nil
}

// worker is one closed-loop client: it owns the connections it established
// and at most one injected link fault at a time (so faults always pair with
// repairs and never leave the topology degraded at exit).
type worker struct {
	client *http.Client
	// endpoints is the replica set; epi points at the one currently in
	// use, rotated on transport failures so a dead primary's workers find
	// the promoted standby.
	endpoints           []string
	epi                 int
	id                  int
	reqSeq              int64
	src, jit            *rng.Source
	nodes, links        int
	termFrac            float64
	faultFrac           float64
	minBW, maxBW, inc   int64
	retries             int
	retryBase, retryMax time.Duration
	cnt                 *counters
	lat                 *latencies
	owned               []int64
	failedLink          int
	view                *shardView
	crossFrac           float64
	// ledger records every establish the server acknowledged and the run
	// still owns (terminates remove entries), keyed by connection ID with
	// the X-Request-ID that created it. After a failover drill, main
	// verifies every entry survived on the promoted endpoint.
	ledger map[int64]string
}

// step issues exactly one HTTP request.
func (w *worker) step() error {
	draw := w.src.Float64()
	switch {
	case draw < w.faultFrac && w.links > 0:
		return w.fault()
	case draw < w.faultFrac+w.termFrac && len(w.owned) > 0:
		return w.terminate()
	default:
		return w.establish()
	}
}

func (w *worker) establish() error {
	a, b := w.pickPair()
	req := server.EstablishRequest{
		Src: a, Dst: b,
		MinKbps: w.minBW, MaxKbps: w.maxBW, IncrementKbps: w.inc,
		Utility: 1,
	}
	w.reqSeq++
	rid := fmt.Sprintf("w%02d-%08d", w.id, w.reqSeq)
	var resp server.EstablishResponse
	code, err := w.timed("POST", "/v1/connections", req, &resp, "X-Request-ID", rid)
	switch {
	case err != nil:
		return err
	case code == http.StatusCreated:
		w.cnt.established.Add(1)
		w.owned = append(w.owned, resp.ID)
		w.ledger[resp.ID] = rid
		return nil
	case code == http.StatusConflict: // admission rejection, an expected outcome
		w.cnt.rejected.Add(1)
		return nil
	default:
		return fmt.Errorf("establish: unexpected status %d", code)
	}
}

func (w *worker) terminate() error {
	i := w.src.Intn(len(w.owned))
	id := w.owned[i]
	w.owned[i] = w.owned[len(w.owned)-1]
	w.owned = w.owned[:len(w.owned)-1]
	code, err := w.timed("DELETE", fmt.Sprintf("/v1/connections/%d", id), nil, nil)
	switch {
	case err != nil:
		return err
	case code == http.StatusOK:
		w.cnt.terminated.Add(1)
		delete(w.ledger, id)
		return nil
	case code == http.StatusNotFound: // dropped by a fault in the meantime
		w.cnt.gone.Add(1)
		delete(w.ledger, id)
		return nil
	default:
		return fmt.Errorf("terminate %d: unexpected status %d", id, code)
	}
}

func (w *worker) fault() error {
	if w.failedLink >= 0 {
		link := w.failedLink
		code, err := w.timed("POST", "/v1/faults/link",
			server.FaultRequest{Link: link, Action: "repair"}, nil)
		switch {
		case err != nil:
			return err
		case code == http.StatusOK:
			w.failedLink = -1
			w.cnt.repaired.Add(1)
			return nil
		case code == http.StatusConflict: // another worker repaired it? treat as done
			w.failedLink = -1
			w.cnt.conflicts.Add(1)
			return nil
		default:
			return fmt.Errorf("repair link %d: unexpected status %d", link, code)
		}
	}
	link := w.src.Intn(w.links)
	code, err := w.timed("POST", "/v1/faults/link", server.FaultRequest{Link: link}, nil)
	switch {
	case err != nil:
		return err
	case code == http.StatusOK:
		w.failedLink = link
		w.cnt.failed.Add(1)
		return nil
	case code == http.StatusConflict: // already failed by a peer
		w.cnt.conflicts.Add(1)
		return nil
	default:
		return fmt.Errorf("fail link %d: unexpected status %d", link, code)
	}
}

// timed issues one request, recording each attempt's latency. Transport
// errors (including the connection-refused/reset burst of a primary dying
// mid-failover), 503s (degraded or overloaded server) and 429s (rate
// limit) are retried with capped exponential backoff and full jitter; once
// the budget is spent the request is counted as a give-up and surfaces as
// an error. A transport failure also rotates the worker to the next
// configured endpoint, so a killed primary's workers land on the promoted
// standby; a request that then succeeds counts as a survived failover.
// When the refusal carries a Retry-After hint, the worker sleeps for the
// hinted time instead of its own backoff guess — the server knows how long
// its own recovery takes.
func (w *worker) timed(method, path string, body, out any, hdrs ...string) (int, error) {
	backoff := w.retryBase
	transportRetried := false
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		code, retryAfter, hinted, err := doJSON(w.client, method, w.endpoints[w.epi]+path, body, out, hdrs...)
		w.lat.observe(time.Since(t0).Seconds())
		if err == nil && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			if transportRetried {
				w.cnt.failovers.Add(1)
			}
			return code, nil
		}
		if attempt >= w.retries {
			w.cnt.giveups.Add(1)
			if err != nil {
				return code, fmt.Errorf("giving up after %d attempts: %w", attempt+1, err)
			}
			return code, fmt.Errorf("giving up after %d attempts: status %d", attempt+1, code)
		}
		w.cnt.retries.Add(1)
		if err != nil || code == http.StatusServiceUnavailable {
			// Rotate on transport failure AND on 503: a lease-fenced
			// ex-primary answers 503 while the promoted standby serves —
			// sitting on the fenced node would burn the whole retry budget
			// there. Single-endpoint runs (the overload drill) just retry
			// in place.
			if err != nil {
				transportRetried = true
			}
			if len(w.endpoints) > 1 {
				w.epi = (w.epi + 1) % len(w.endpoints)
			}
		}
		if hinted {
			// Honor the server's hint, with a little jitter on top so
			// hinted workers don't all come back in the same instant.
			w.cnt.hints.Add(1)
			time.Sleep(retryAfter + time.Duration(w.jit.Float64()*float64(w.retryBase)))
		} else {
			// Sleep uniformly in [backoff/2, backoff] so workers don't
			// thunder back in lockstep, then double up to the cap.
			time.Sleep(backoff/2 + time.Duration(w.jit.Float64()*float64(backoff/2)))
		}
		if backoff *= 2; backoff > w.retryMax {
			backoff = w.retryMax
		}
	}
}

// doJSON performs one JSON round trip, returning the status code, the
// parsed Retry-After hint and whether the server sent a well-formed hint
// at all (delay-seconds or HTTP-date form — a past date is a valid hint of
// zero wait). Transport failures return an error; non-2xx statuses do not
// (callers classify them). hdrs is an optional flat list of header
// key/value pairs.
func doJSON(client *http.Client, method, url string, body, out any, hdrs ...string) (int, time.Duration, bool, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, 0, false, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, 0, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for i := 0; i+1 < len(hdrs); i += 2 {
		req.Header.Set(hdrs[i], hdrs[i+1])
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, false, err
	}
	defer resp.Body.Close()
	retryAfter, hinted := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, retryAfter, hinted, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, retryAfter, hinted, fmt.Errorf("decode %s %s: %w", method, url, err)
		}
	}
	return resp.StatusCode, retryAfter, hinted, nil
}
