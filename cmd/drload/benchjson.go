// -bench-json: merge this run's end-to-end measurement into a benchparse
// JSON report, so server-level throughput baselines live next to the
// microbenchmark baselines produced by scripts/bench.sh and compare with the
// same tooling (cmd/benchjson -compare). The record is keyed like a real
// benchmark line — pkg drqos/cmd/drload, name BenchmarkDrloadEndToEnd — and
// re-running against the same file replaces it in place.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"drqos/internal/benchparse"
	"drqos/internal/stats"
)

var benchJSON = flag.String("bench-json", "",
	"merge this run's end-to-end RPS and latency percentiles into a benchparse JSON report at this path")

var benchName = flag.String("bench-name", "",
	"override the bench record's benchmark name (default BenchmarkDrloadEndToEnd); scripts/bench.sh uses it to keep 1-shard and 4-shard baselines as separate records")

// benchRecord shapes one drload run as a benchmark result: NsPerOp is wall
// time per issued request (the closed-loop end-to-end cost), and the custom
// metrics carry throughput, the latency percentiles in milliseconds, and the
// worker count so runs at different concurrency are not confused.
func benchRecord(requests int64, elapsed time.Duration, workers int, d *stats.Digest) benchparse.Result {
	name := "BenchmarkDrloadEndToEnd"
	if *benchName != "" {
		name = *benchName
	}
	rec := benchparse.Result{
		Pkg:        "drqos/cmd/drload",
		Name:       name,
		Iterations: requests,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(requests),
		Metrics: map[string]float64{
			"rps":     float64(requests) / elapsed.Seconds(),
			"workers": float64(workers),
		},
	}
	if d.N() > 0 {
		clean := func(seconds float64) float64 {
			if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
				return 0
			}
			return seconds * 1e3
		}
		rec.Metrics["p50-ms"] = clean(d.P50())
		rec.Metrics["p90-ms"] = clean(d.P90())
		rec.Metrics["p99-ms"] = clean(d.P99())
	}
	return rec
}

// writeBenchRecord loads the report at path (or starts a fresh one), replaces
// any existing record with the same key, and writes the file back.
func writeBenchRecord(path string, rec benchparse.Result) error {
	var rep benchparse.Report
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("parse existing report %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh report.
	default:
		return err
	}
	if rep.Date == "" {
		rep.Date = time.Now().Format("2006-01-02")
	}
	if rep.GoVersion == "" {
		rep.GoVersion = runtime.Version()
	}
	if rep.Host == "" {
		host, _ := os.Hostname()
		rep.Host = host
	}
	replaced := false
	for i := range rep.Results {
		if rep.Results[i].Key() == rec.Key() {
			rep.Results[i] = rec
			replaced = true
			break
		}
	}
	if !replaced {
		rep.Results = append(rep.Results, rec)
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
