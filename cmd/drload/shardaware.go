// -cross-frac: shard-aware endpoint picking against a sharded drserverd
// (-shards > 1). The generator fetches the partition once from GET
// /v1/shards and then steers each establish deterministically: with
// probability -cross-frac the pair spans two shards (exercising the
// two-phase establish), otherwise both endpoints live on one shard (the
// cheap single-shard fast path). Off by default (-cross-frac -1): the
// classic uniform pair draw is untouched, byte-for-byte, so existing
// baselines stay comparable. Against an unsharded daemon the flag logs a
// note and falls back to the classic draw.
package main

import (
	"flag"
	"fmt"
	"net/http"

	"drqos/internal/rng"
	"drqos/internal/server"
)

var crossFrac = flag.Float64("cross-frac", -1,
	"fraction of establishes that must span two shards (sharded daemon only; negative = classic uniform pairs)")

// shardView is the partition as GET /v1/shards describes it, indexed for
// fast pair picking.
type shardView struct {
	shards    int
	nodeShard []int
	byShard   [][]int // node IDs grouped by owning shard
}

// fetchShardView asks the daemon for its partition. A 404 means the daemon
// is unsharded (the single-plane API has no /v1/shards); that returns
// (nil, nil) and the caller keeps the classic draw.
func fetchShardView(client *http.Client, addr string) (*shardView, error) {
	var resp struct {
		Shards    int   `json:"shards"`
		NodeShard []int `json:"node_shard"`
	}
	code, _, _, err := doJSON(client, "GET", addr+"/v1/shards", nil, &resp)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNotFound {
		return nil, nil
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/shards: unexpected status %d", code)
	}
	v := &shardView{shards: resp.Shards, nodeShard: resp.NodeShard, byShard: make([][]int, resp.Shards)}
	for n, s := range resp.NodeShard {
		v.byShard[s] = append(v.byShard[s], n)
	}
	return v, nil
}

// pickPair draws one establish endpoint pair. With a shard view and a
// non-negative cross fraction the draw is steered intra- or cross-shard;
// otherwise it is the classic uniform draw (same rng consumption as ever,
// so -cross-frac -1 reproduces historical workloads exactly).
func (w *worker) pickPair() (int, int) {
	if w.view == nil || w.view.shards < 2 || w.crossFrac < 0 {
		a := w.src.Intn(w.nodes)
		b := w.src.Intn(w.nodes)
		if a == b {
			b = (b + 1) % w.nodes
		}
		return a, b
	}
	if w.src.Float64() < w.crossFrac {
		a := w.src.Intn(w.nodes)
		// Redraw until the peer lands on another shard; bounded so a
		// pathological partition can't spin, falling back to any distinct
		// pair.
		for tries := 0; tries < 64; tries++ {
			b := w.src.Intn(w.nodes)
			if w.view.nodeShard[b] != w.view.nodeShard[a] {
				return a, b
			}
		}
		return distinctPair(w.src, w.nodes, a)
	}
	a := w.src.Intn(w.nodes)
	bucket := w.view.byShard[w.view.nodeShard[a]]
	if len(bucket) < 2 {
		return distinctPair(w.src, w.nodes, a)
	}
	b := bucket[w.src.Intn(len(bucket))]
	for tries := 0; b == a && tries < 64; tries++ {
		b = bucket[w.src.Intn(len(bucket))]
	}
	if b == a {
		return distinctPair(w.src, w.nodes, a)
	}
	return a, b
}

func distinctPair(src *rng.Source, nodes, a int) (int, int) {
	b := src.Intn(nodes)
	if a == b {
		b = (b + 1) % nodes
	}
	return a, b
}

// fetchStats reads the service stats in whichever shape the daemon serves:
// bare server.Stats (unsharded) or the sharded aggregate wrapper.
func fetchStats(client *http.Client, addr string, sv *shardView, st *server.Stats) error {
	if sv == nil {
		_, _, _, err := doJSON(client, "GET", addr+"/v1/stats", nil, st)
		return err
	}
	var wrap struct {
		Aggregate server.Stats `json:"aggregate"`
	}
	if _, _, _, err := doJSON(client, "GET", addr+"/v1/stats", nil, &wrap); err != nil {
		return err
	}
	*st = wrap.Aggregate
	return nil
}
