// Overload mode: a sustained over-capacity burst drill against a live
// drserverd. Instead of the default closed loop (where offered load
// self-limits to the server's service rate), this mode first calibrates the
// single-worker closed-loop rate, then fires establishes OPEN-LOOP at a
// multiple of it — arrivals do not wait for completions, so the actor
// queue must fall behind and the overload control plane must engage.
//
// The drill asserts the paper-level graceful-degradation contract from the
// outside: the server sheds with 503/429 + Retry-After instead of wedging,
// reads stay fast while it sheds, and readiness returns once the burst
// stops.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/stats"
)

var (
	overloadMode  = flag.Bool("overload", false, "run the sustained over-capacity burst drill instead of the closed-loop mix")
	ovlDuration   = flag.Duration("overload-duration", 10*time.Second, "how long the open-loop burst lasts")
	ovlRate       = flag.Float64("overload-rate", 0, "open-loop arrival rate in req/s (0 = calibrate and use -overload-factor x the closed-loop rate)")
	ovlFactor     = flag.Float64("overload-factor", 4, "arrival-rate multiplier over the calibrated closed-loop rate")
	ovlCalibrate  = flag.Duration("overload-calibrate", 3*time.Second, "closed-loop calibration window before the burst")
	ovlInflight   = flag.Int("overload-max-inflight", 512, "cap on concurrent burst requests (arrivals beyond it are dropped locally)")
	ovlTimeout    = flag.Duration("overload-timeout", 2*time.Second, "per-request timeout during the burst; abandoned requests must be shed by the server, not executed")
	ovlReadP99Max = flag.Duration("overload-read-p99-max", 500*time.Millisecond, "fail if GET /v1/stats p99 during the burst exceeds this")
	ovlRecover    = flag.Duration("overload-recover-within", 30*time.Second, "fail if /readyz is not 200 this long after the burst ends")
)

// runOverload drives the three-phase drill: calibrate, burst, recover.
// It returns an error (non-zero exit) when the server failed the contract:
// it never shed, reads got slow, or readiness never came back.
func runOverload(client *http.Client, addr string, st server.Stats, seed uint64) error {
	burstClient := &http.Client{
		Timeout: *ovlTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        *ovlInflight,
			MaxIdleConnsPerHost: *ovlInflight,
		},
	}
	src := rng.New(seed)
	pair := func() (int, int) {
		a := src.Intn(st.Nodes)
		b := src.Intn(st.Nodes)
		if a == b {
			b = (b + 1) % st.Nodes
		}
		return a, b
	}

	// Phase 1: calibrate. One closed-loop worker measures the end-to-end
	// service rate; each established connection is terminated immediately
	// so calibration does not consume capacity the burst will need.
	rate := *ovlRate
	if rate <= 0 {
		n := 0
		t0 := time.Now()
		for time.Since(t0) < *ovlCalibrate {
			a, b := pair()
			var est server.EstablishResponse
			code, _, _, err := doJSON(client, "POST", addr+"/v1/connections",
				server.EstablishRequest{Src: a, Dst: b, Utility: 1}, &est)
			if err != nil {
				return fmt.Errorf("calibration establish: %w", err)
			}
			n++
			if code == http.StatusCreated {
				if _, _, _, err := doJSON(client, "DELETE", fmt.Sprintf("%s/v1/connections/%d", addr, est.ID), nil, nil); err != nil {
					return fmt.Errorf("calibration terminate: %w", err)
				}
				n++
			}
		}
		r1 := float64(n) / time.Since(t0).Seconds()
		rate = r1 * *ovlFactor
		fmt.Printf("calibration: closed-loop %.0f req/s over %s — bursting open-loop at %.0f req/s (%.1fx)\n",
			r1, *ovlCalibrate, rate, *ovlFactor)
	} else {
		fmt.Printf("bursting open-loop at fixed %.0f req/s\n", rate)
	}

	// Phase 2: the burst. Arrivals fire on a fixed clock regardless of
	// completions; a semaphore caps inflight so the generator itself stays
	// healthy (drops beyond it are counted, not silently lost).
	var (
		established atomic.Int64
		rejected    atomic.Int64
		shed503     atomic.Int64
		shed429     atomic.Int64
		hinted      atomic.Int64 // sheds that carried a Retry-After hint
		timeouts    atomic.Int64
		hardErrs    atomic.Int64
		otherCodes  atomic.Int64
		localDrops  atomic.Int64
		terminated  atomic.Int64
		wg          sync.WaitGroup
		sem         = make(chan struct{}, *ovlInflight)
		ids         = make(chan int64, *ovlInflight)
	)

	// Reaper: terminations are capacity-freeing and must stay admitted
	// while the server sheds establishes — exercising the freeing lane
	// under load is part of the drill.
	reapDone := make(chan struct{})
	go func() {
		defer close(reapDone)
		for id := range ids {
			code, _, _, err := doJSON(burstClient, "DELETE", fmt.Sprintf("%s/v1/connections/%d", addr, id), nil, nil)
			if err == nil && code == http.StatusOK {
				terminated.Add(1)
			}
		}
	}()

	// Reader: polls stats throughout the burst; its latency digest is the
	// "reads stay live" gate.
	readLat := stats.NewDigest()
	var readErrs atomic.Int64
	readStop := make(chan struct{})
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			select {
			case <-readStop:
				return
			default:
			}
			t0 := time.Now()
			if _, _, _, err := doJSON(burstClient, "GET", addr+"/v1/stats", nil, nil); err != nil {
				readErrs.Add(1)
			} else {
				readLat.Observe(time.Since(t0).Seconds())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	burstEnd := time.Now().Add(*ovlDuration)
	issued := 0
	for time.Now().Before(burstEnd) {
		<-tick.C
		issued++
		select {
		case sem <- struct{}{}:
		default:
			localDrops.Add(1)
			continue
		}
		a, b := pair()
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			var est server.EstablishResponse
			code, retryAfter, _, err := doJSON(burstClient, "POST", addr+"/v1/connections",
				server.EstablishRequest{Src: a, Dst: b, Utility: 1}, &est)
			switch {
			case err != nil:
				if isTimeout(err) {
					timeouts.Add(1)
				} else {
					hardErrs.Add(1)
				}
			case code == http.StatusCreated:
				established.Add(1)
				select {
				case ids <- est.ID:
				default: // reaper saturated; leak the connection to the run
				}
			case code == http.StatusConflict:
				rejected.Add(1)
			case code == http.StatusServiceUnavailable:
				shed503.Add(1)
				if retryAfter > 0 {
					hinted.Add(1)
				}
			case code == http.StatusTooManyRequests:
				shed429.Add(1)
				if retryAfter > 0 {
					hinted.Add(1)
				}
			default:
				otherCodes.Add(1)
			}
		}()
	}
	tick.Stop()
	wg.Wait()
	close(ids)
	<-reapDone
	close(readStop)
	<-readDone

	// Phase 3: recovery. The burst is over; the server must drain its
	// backlog and report ready again.
	recovered := false
	var recoveryTook time.Duration
	recT0 := time.Now()
	for time.Since(recT0) < *ovlRecover {
		code, _, _, err := doJSON(client, "GET", addr+"/readyz", nil, nil)
		if err == nil && code == http.StatusOK {
			recovered = true
			recoveryTook = time.Since(recT0)
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	var after server.Stats
	if _, _, _, err := doJSON(client, "GET", addr+"/v1/stats", nil, &after); err != nil {
		return fmt.Errorf("post-burst stats: %w", err)
	}

	shed := shed503.Load() + shed429.Load()
	goodput := established.Load() + rejected.Load()
	fmt.Printf("\noverload burst: %d arrivals over %s at %.0f req/s\n", issued, *ovlDuration, rate)
	fmt.Printf("outcomes: established=%d rejected=%d terminated=%d shed_503=%d shed_429=%d hinted=%d timeouts=%d local_drops=%d errors=%d other=%d\n",
		established.Load(), rejected.Load(), terminated.Load(), shed503.Load(), shed429.Load(),
		hinted.Load(), timeouts.Load(), localDrops.Load(), hardErrs.Load(), otherCodes.Load())
	fmt.Printf("goodput: %d serviced (%.0f%% of arrivals), %d shed at the door\n",
		goodput, 100*float64(goodput)/float64(max(issued, 1)), shed)
	ms := func(seconds float64) string {
		if readLat.N() == 0 || math.IsNaN(seconds) {
			return "n/a"
		}
		return fmt.Sprintf("%.2fms", seconds*1e3)
	}
	fmt.Printf("reads during burst: n=%d p50=%s p99=%s max=%s errors=%d\n",
		readLat.N(), ms(readLat.P50()), ms(readLat.P99()), ms(readLat.Max()), readErrs.Load())
	fmt.Printf("server: overload_episodes=%d shed_expired=%d shed_canceled=%d alive=%d\n",
		after.OverloadEpisodes, after.ShedExpired, after.ShedCanceled, after.Alive)
	if recovered {
		fmt.Printf("recovery: ready again %.1fs after burst end\n", recoveryTook.Seconds())
	}

	// The contract gates.
	var failures []string
	if shed == 0 && after.ShedExpired+after.ShedCanceled == 0 {
		failures = append(failures, "server never shed: no 503/429 and no server-side sheds under sustained over-capacity load")
	}
	if p99 := readLat.P99(); readLat.N() > 0 && p99 > ovlReadP99Max.Seconds() {
		failures = append(failures, fmt.Sprintf("read p99 %.0fms exceeds bound %s (reads must stay live while shedding)", p99*1e3, *ovlReadP99Max))
	}
	if readLat.N() == 0 {
		failures = append(failures, "no successful reads during the burst")
	}
	if !recovered {
		failures = append(failures, fmt.Sprintf("/readyz not 200 within %s of burst end", *ovlRecover))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		return fmt.Errorf("overload drill failed %d contract gate(s)", len(failures))
	}
	fmt.Println("overload drill: all contract gates passed")
	return nil
}

// isTimeout reports whether the request died of its own deadline — an
// expected casualty during an over-capacity burst, counted apart from
// hard transport errors.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
