// Command topogen generates the network topologies used by the
// reproduction — Waxman random graphs and transit-stub ("tier")
// internetworks — and reports their structural metrics.
//
// Examples:
//
//	topogen -kind waxman -nodes 100 -seed 1 -format json -o net.json
//	topogen -kind tier -seed 2 -format dot -o net.dot
//	topogen -kind waxman -nodes 100 -seed 1 -metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"drqos/internal/core"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "waxman", "topology kind: waxman or tier")
		nodes   = flag.Int("nodes", 100, "node count (waxman only)")
		alpha   = flag.Float64("alpha", core.PaperAlpha, "Waxman alpha")
		beta    = flag.Float64("beta", core.PaperBeta, "Waxman beta")
		seed    = flag.Uint64("seed", 1, "generation seed")
		format  = flag.String("format", "json", "output format: json or dot")
		out     = flag.String("o", "", "output file (default stdout)")
		metrics = flag.Bool("metrics", false, "print structural metrics to stderr")
	)
	flag.Parse()

	src := rng.New(*seed)
	var g *topology.Graph
	var err error
	switch *kind {
	case "waxman":
		g, err = topology.Waxman(topology.WaxmanConfig{
			Nodes: *nodes, Alpha: *alpha, Beta: *beta, EnsureConnected: true,
		}, src)
	case "tier":
		g, err = topology.TransitStub(topology.DefaultTransitStub(), src)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	if *metrics {
		m := topology.ComputeMetrics(g)
		fmt.Fprintf(os.Stderr, "nodes=%d links=%d (directed %d) avgDegree=%.2f diameter=%d avgHops=%.2f connected=%v\n",
			m.Nodes, m.Edges, 2*m.Edges, m.AvgDegree, m.Diameter, m.AvgHops, m.Connected)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return topology.WriteJSON(w, g)
	case "dot":
		return topology.WriteDOT(w, g, *kind)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
